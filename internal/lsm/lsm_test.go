package lsm

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// testEnv builds a small device+fs+db. capacity in MiB.
func testEnv(t *testing.T, capacityMiB int64, content bool, tweak func(*Config)) (*DB, *blockdev.Device, *extfs.FS) {
	return testEnvBW(t, capacityMiB, 1<<30, content, tweak)
}

// testEnvBW is testEnv with an explicit device write bandwidth.
func testEnvBW(t *testing.T, capacityMiB, writeBW int64, content bool, tweak func(*Config)) (*DB, *blockdev.Device, *extfs.FS) {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  capacityMiB << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "lsm-test",
			ReadFixed:  5 * time.Microsecond,
			WriteFixed: 5 * time.Microsecond,
			ReadBW:     2 << 30,
			WriteBW:    writeBW,
			HardwareOP: 0.25,
			EraseTime:  200 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.New(ssd)
	if content {
		dev.EnableContentStore()
	}
	fs, err := extfs.Mount(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(capacityMiB << 19) // dataset ~ half the device
	cfg.Content = content
	cfg.CPUPutTime = time.Microsecond
	cfg.CPUGetTime = time.Microsecond
	if tweak != nil {
		tweak(&cfg)
	}
	db, err := Open(fs, cfg, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, fs
}

func TestGetAfterFlush(t *testing.T) {
	db, _, _ := testEnv(t, 16, true, func(c *Config) {
		c.MemtableBytes = 16 << 10 // rotate fast
	})
	var now sim.Duration
	var err error
	vals := map[uint64][]byte{}
	for i := uint64(0); i < 200; i++ {
		v := make([]byte, 100)
		kv.SynthValue(v, kv.EncodeKey(i), i)
		vals[i] = v
		now, err = db.Put(now, kv.EncodeKey(i), v, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = db.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	if db.IO().Flushes == 0 {
		t.Fatal("expected flushes")
	}
	for i := uint64(0); i < 200; i++ {
		_, got, found, err := db.Get(now, kv.EncodeKey(i))
		if err != nil || !found {
			t.Fatalf("key %d after flush: found=%v err=%v", i, found, err)
		}
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("key %d value mismatch after flush", i)
		}
	}
}

func TestCompactionsHappenAndLevelsFill(t *testing.T) {
	db, _, _ := testEnv(t, 32, false, func(c *Config) {
		c.MemtableBytes = 16 << 10
		c.BaseLevelBytes = 64 << 10
		c.TargetFileBytes = 16 << 10
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(7)
	written := make(map[uint64]bool)
	for i := 0; i < 20000; i++ {
		id := rng.Uint64n(5000)
		written[id] = true
		now, err = db.Put(now, kv.EncodeKey(id), nil, 256)
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = db.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	io := db.IO()
	if io.Compactions == 0 {
		t.Fatal("expected compactions")
	}
	sizes := db.LevelSizes()
	deep := 0
	for li := 1; li < len(sizes); li++ {
		if sizes[li] > 0 {
			deep = li
		}
	}
	if deep < 2 {
		t.Fatalf("expected data in L2+, level sizes: %v", sizes)
	}
	// After compaction, every written key must still resolve; keys never
	// written must not appear.
	for id := uint64(0); id < 5000; id++ {
		_, _, found, err := db.Get(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
		if found != written[id] {
			t.Fatalf("key %d: found=%v, want %v", id, found, written[id])
		}
	}
}

func TestWriteStallsAreCounted(t *testing.T) {
	// Slow device + tiny thresholds: flushes can't keep up and puts
	// must stall.
	// WAL off so the foreground thread is not throttled by its own
	// journal I/O and can outrun the flush worker.
	db, _, _ := testEnvBW(t, 16, 4<<20 /* 4 MiB/s */, false, func(c *Config) {
		c.MemtableBytes = 4 << 10
		c.MaxImmutableMemtables = 1
		c.L0CompactionTrigger = 2
		c.L0StallTrigger = 4
		c.ChunkPages = 4
		c.DisableWAL = true
	})
	var now sim.Duration
	var err error
	for i := 0; i < 3000; i++ {
		now, err = db.Put(now, kv.EncodeKey(uint64(i)), nil, 512)
		if err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().StallTime == 0 {
		t.Fatal("expected stall time under heavy ingest")
	}
	if db.IO().StallEvents == 0 {
		t.Fatal("expected stall events")
	}
}

func TestWAAIsAmplified(t *testing.T) {
	db, dev, _ := testEnv(t, 64, false, func(c *Config) {
		c.MemtableBytes = 32 << 10
		c.BaseLevelBytes = 128 << 10
		c.TargetFileBytes = 32 << 10
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(3)
	for i := 0; i < 30000; i++ {
		now, err = db.Put(now, kv.EncodeKey(rng.Uint64n(8000)), nil, 256)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	user := db.Stats().UserBytesWritten
	host := dev.Counters().BytesWritten
	waa := float64(host) / float64(user)
	// Leveled LSM with WAL: expect well above 2 (WAL+flush) once
	// compaction has churned, and below a sane ceiling.
	if waa < 2.5 || waa > 40 {
		t.Fatalf("WA-A = %.2f outside sane range [2.5, 40]", waa)
	}
}

func TestOutOfSpaceSurfaces(t *testing.T) {
	db, _, _ := testEnv(t, 16, false, func(c *Config) {
		c.MemtableBytes = 64 << 10
	})
	var now sim.Duration
	var err error
	// Write far more than the device can hold.
	for i := 0; i < 200000; i++ {
		now, err = db.Put(now, kv.EncodeKey(uint64(i)), nil, 4096)
		if err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("expected out-of-space error")
	}
	if !errors.Is(err, extfs.ErrNoSpace) {
		t.Fatalf("error %v is not ErrNoSpace", err)
	}
	if db.Err() == nil {
		t.Fatal("fatal error should be sticky")
	}
	if _, err := db.Put(now, kv.EncodeKey(1), nil, 10); err == nil {
		t.Fatal("puts after fatal error should fail")
	}
}

func TestCloseRejectsFurtherOps(t *testing.T) {
	db, _, _ := testEnv(t, 16, false, nil)
	now, err := db.Put(0, kv.EncodeKey(1), nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Close(now); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put(now, kv.EncodeKey(2), nil, 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
	if _, _, _, err := db.Get(now, kv.EncodeKey(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed on Get, got %v", err)
	}
}

func TestWALSegmentsAreRotatedAndCleaned(t *testing.T) {
	db, _, fs := testEnv(t, 16, false, func(c *Config) {
		c.MemtableBytes = 8 << 10
	})
	var now sim.Duration
	var err error
	for i := 0; i < 500; i++ {
		now, err = db.Put(now, kv.EncodeKey(uint64(i)), nil, 128)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	// Segments are recycled, not deleted: the on-disk count must stay
	// bounded by active + flush pipeline depth, however many rotations
	// happened.
	walFiles := 0
	for _, name := range fs.List() {
		if len(name) >= 3 && name[:3] == "wal" {
			walFiles++
		}
	}
	if walFiles == 0 || walFiles > db.cfg.MaxImmutableMemtables+2 {
		t.Fatalf("%d WAL segments on disk, want 1..%d (recycled pool)",
			walFiles, db.cfg.MaxImmutableMemtables+2)
	}
}

func TestDisableWAL(t *testing.T) {
	db, dev, _ := testEnv(t, 16, false, func(c *Config) {
		c.DisableWAL = true
	})
	var now sim.Duration
	var err error
	before := dev.Counters().BytesWritten
	for i := 0; i < 100; i++ {
		now, err = db.Put(now, kv.EncodeKey(uint64(i)), nil, 100)
		if err != nil {
			t.Fatal(err)
		}
	}
	if dev.Counters().BytesWritten != before {
		t.Fatal("puts without WAL and without rotation should not write")
	}
	_ = now
}

// Property: the DB agrees with a reference map under random workloads
// (accounting mode: presence/absence only).
func TestLevelInvariants(t *testing.T) {
	db, _, _ := testEnv(t, 32, false, func(c *Config) {
		c.MemtableBytes = 8 << 10
		c.BaseLevelBytes = 32 << 10
		c.TargetFileBytes = 8 << 10
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(11)
	for i := 0; i < 10000; i++ {
		now, err = db.Put(now, kv.EncodeKey(rng.Uint64n(3000)), nil, 128)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	// Sorted levels: files ordered and non-overlapping.
	for li := 1; li < len(db.levels); li++ {
		lvl := db.levels[li]
		for i := 1; i < len(lvl); i++ {
			if bytes.Compare(lvl[i-1].Largest(), lvl[i].Smallest()) >= 0 {
				t.Fatalf("level %d files overlap or out of order", li)
			}
		}
	}
}
