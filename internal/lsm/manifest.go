package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"ptsbench/internal/extfs"
	"ptsbench/internal/memtable"
	"ptsbench/internal/sim"
	"ptsbench/internal/sstable"
	"ptsbench/internal/wal"
)

// The manifest records the current version — the SST files of every
// level, in order — so that a database can be reopened after a crash.
// Two manifest files alternate (like a double-buffered superblock): a
// torn write corrupts at most the newer copy, and recovery falls back to
// the older one. Each write carries a monotonically increasing sequence
// number and a CRC.

const (
	manifestA     = "MANIFEST-A"
	manifestB     = "MANIFEST-B"
	manifestMagic = 0x4D414E49 // "MANI"
)

// manifestState is the serialized version metadata.
type manifestState struct {
	writeSeq   uint64 // manifest generation
	seq        uint64 // KV sequence number high-water mark
	flushedSeq uint64 // highest seq covered by a table named below
	nextFileID uint64
	walID      uint64
	levels     [][]string // file names per level
}

func (m *manifestState) encode() []byte {
	var b []byte
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		b = append(b, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		b = append(b, tmp[:]...)
	}
	putStr := func(s string) {
		put32(uint32(len(s)))
		b = append(b, s...)
	}
	put32(manifestMagic)
	put64(m.writeSeq)
	put64(m.seq)
	put64(m.flushedSeq)
	put64(m.nextFileID)
	put64(m.walID)
	put32(uint32(len(m.levels)))
	for _, lvl := range m.levels {
		put32(uint32(len(lvl)))
		for _, name := range lvl {
			putStr(name)
		}
	}
	crc := crc32.ChecksumIEEE(b)
	put32(crc)
	return b
}

func decodeManifest(b []byte) (*manifestState, error) {
	if len(b) < 4+8*5+4+4 {
		return nil, fmt.Errorf("lsm: manifest too short")
	}
	// Find the payload length by re-walking; CRC is the last 4 bytes of
	// the payload region, so walk fields first.
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(b) {
			return 0, fmt.Errorf("lsm: manifest truncated")
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, nil
	}
	get64 := func() (uint64, error) {
		if off+8 > len(b) {
			return 0, fmt.Errorf("lsm: manifest truncated")
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, nil
	}
	magic, err := get32()
	if err != nil || magic != manifestMagic {
		return nil, fmt.Errorf("lsm: bad manifest magic")
	}
	m := &manifestState{}
	if m.writeSeq, err = get64(); err != nil {
		return nil, err
	}
	if m.seq, err = get64(); err != nil {
		return nil, err
	}
	if m.flushedSeq, err = get64(); err != nil {
		return nil, err
	}
	if m.nextFileID, err = get64(); err != nil {
		return nil, err
	}
	if m.walID, err = get64(); err != nil {
		return nil, err
	}
	nLevels, err := get32()
	if err != nil || nLevels > 64 {
		return nil, fmt.Errorf("lsm: bad level count")
	}
	for li := uint32(0); li < nLevels; li++ {
		count, err := get32()
		if err != nil || count > 1<<20 {
			return nil, fmt.Errorf("lsm: bad file count")
		}
		var lvl []string
		for i := uint32(0); i < count; i++ {
			n, err := get32()
			if err != nil || int(n) > len(b)-off {
				return nil, fmt.Errorf("lsm: bad name length")
			}
			lvl = append(lvl, string(b[off:off+int(n)]))
			off += int(n)
		}
		m.levels = append(m.levels, lvl)
	}
	want, err := get32()
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(b[:off-4]) != want {
		return nil, fmt.Errorf("lsm: manifest CRC mismatch")
	}
	return m, nil
}

// writeManifest persists the current version into the older of the two
// manifest slots and returns the completion time.
// manifestEncodedLen returns the exact byte length manifestState.encode
// would produce for the current tree, without building it — the
// accounting-mode write path needs only the page count.
func (d *DB) manifestEncodedLen() int {
	n := 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4 // magic, write/seq/flushed/file/wal ids, level count, crc
	for _, lvl := range d.levels {
		n += 4
		for _, t := range lvl {
			n += 4 + len(t.FileName())
		}
	}
	return n
}

func (d *DB) writeManifest(now sim.Duration) (sim.Duration, error) {
	d.manifestSeq++
	name := manifestA
	if d.manifestSeq%2 == 0 {
		name = manifestB
	}
	// Rewrite the slot in place (create on first use).
	f, err := d.fs.Open(name)
	if err != nil {
		if f, err = d.fs.Create(name); err != nil {
			return now, err
		}
	}
	ps := d.fs.PageSize()
	var pages int
	var data []byte
	if d.cfg.Content {
		st := manifestState{
			writeSeq:   d.manifestSeq,
			seq:        d.seq,
			flushedSeq: d.flushedSeq,
			nextFileID: d.nextFileID,
			walID:      d.walID,
		}
		for _, lvl := range d.levels {
			names := make([]string, 0, len(lvl))
			for _, t := range lvl {
				names = append(names, t.FileName())
			}
			st.levels = append(st.levels, names)
		}
		payload := st.encode()
		pages = (len(payload) + ps - 1) / ps
		data = make([]byte, pages*ps)
		copy(data, payload)
	} else {
		// Accounting mode: the manifest bytes are never read back, so
		// only the encoded length (and therefore the page count) is
		// charged — no serialization buffers.
		pages = (d.manifestEncodedLen() + ps - 1) / ps
	}
	if need := int64(pages) - f.SizePages(); need > 0 {
		if err := f.Grow(need); err != nil {
			return now, err
		}
	}
	return f.WriteAt(now, 0, pages, data)
}

// readManifest loads the newest valid manifest, or nil if none exists.
func readManifest(fs *extfs.FS, now sim.Duration) (*manifestState, sim.Duration, error) {
	var best *manifestState
	for _, name := range []string{manifestA, manifestB} {
		f, err := fs.Open(name)
		if err != nil {
			continue
		}
		buf := make([]byte, f.SizePages()*int64(fs.PageSize()))
		now, err = f.ReadAt(now, 0, int(f.SizePages()), buf)
		if err != nil {
			return nil, now, err
		}
		st, err := decodeManifest(buf)
		if err != nil {
			continue // torn or stale slot
		}
		if best == nil || st.writeSeq > best.writeSeq {
			best = st
		}
	}
	return best, now, nil
}

// Recover reopens a database from its on-device state: the newest valid
// manifest names the SST files of every level, each table is re-parsed
// from disk, and surviving WAL segments are replayed into a fresh
// memtable. It requires content mode (the block device must retain
// bytes). The returned time includes all recovery I/O — the cost a real
// engine pays to restart.
func Recover(fs *extfs.FS, cfg Config, rng *sim.RNG, now sim.Duration) (*DB, sim.Duration, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, now, err
	}
	if !cfg.Content {
		return nil, now, fmt.Errorf("lsm: Recover requires content mode")
	}
	st, now, err := readManifest(fs, now)
	if err != nil {
		return nil, now, err
	}
	if st == nil {
		// The database died before its first flush committed a manifest:
		// the synced WAL is the only durable state. Recover from a zero
		// manifest — every surviving SST is an orphan (removed below),
		// the WAL rescan rebuilds the memtable and id counters, and the
		// closing recovery flush writes the first real manifest.
		st = &manifestState{}
	}
	d := &DB{
		cfg:         cfg,
		fs:          fs,
		rng:         rng,
		levels:      make([][]*sstable.Table, cfg.NumLevels),
		levelBytes:  make([]int64, cfg.NumLevels),
		busy:        make(map[uint64]bool),
		flushW:      sim.NewWorker("lsm-flush"),
		compactW:    sim.NewWorker("lsm-compact-l0"),
		compactWD:   sim.NewWorker("lsm-compact-deep"),
		seq:         st.seq,
		flushedSeq:  st.flushedSeq,
		nextFileID:  st.nextFileID,
		walID:       st.walID,
		manifestSeq: st.writeSeq,
	}
	d.mem = memtable.New(rng.Split())
	// Reopen every table named by the manifest.
	for li, names := range st.levels {
		if li >= len(d.levels) {
			return nil, now, fmt.Errorf("lsm: manifest has more levels than config")
		}
		for _, name := range names {
			f, err := fs.Open(name)
			if err != nil {
				return nil, now, fmt.Errorf("lsm: manifest names missing file %s: %w", name, err)
			}
			t, done, err := sstable.OpenFromFile(f, fs.PageSize(), now)
			if err != nil {
				return nil, now, err
			}
			now = done
			// Bind the footer's embedded table id to the file name. The
			// two are minted together at build time, so a mismatch means
			// the file holds a DIFFERENT table's bytes: its own flushed
			// image was acknowledged by the device but never persisted
			// (fsync lie) and recovery is reading whatever stale table
			// previously occupied those extents. The image parses cleanly
			// — only this binding catches it. Refuse loudly.
			if want, perr := strconv.ParseUint(strings.TrimPrefix(name, "sst-"), 10, 64); perr == nil && t.ID != want {
				return nil, now, fmt.Errorf(
					"lsm: table %s carries embedded id %d: device dropped an acknowledged write (fsync lie or misdirect) and the file holds a stale table image",
					name, t.ID)
			}
			d.levels[li] = append(d.levels[li], t)
			d.levelBytes[li] += t.SizeBytes()
		}
	}
	d.shapeChanged()
	// Replay surviving WAL segments. Records across segments are ordered
	// by sequence number (segments are recycled out of name order), so
	// collect first, then apply in order. Records at or below the
	// manifest's flushedSeq mark are skipped: they already live in a table
	// named above, and — crucially — a recycled segment whose zeroing
	// write was lost in the crash replays its previous generation, whose
	// stale records must not shadow the newer table state.
	//
	// Surviving file names can also outrun the recovered manifest: a cut
	// may land after a WAL segment or SST file was created but before the
	// manifest recording it became durable. Advance the id counters past
	// every survivor so freshly minted names cannot collide (ErrExist),
	// and remove orphan SSTs no manifest level names — any live data they
	// held is covered by the WAL replay.
	tracked := make(map[string]bool)
	for _, lvl := range st.levels {
		for _, name := range lvl {
			tracked[name] = true
		}
	}
	var records []wal.Record
	var oldSegments, orphanSSTs []string
	for _, name := range fs.List() {
		switch {
		case strings.HasPrefix(name, "sst-"):
			if id, perr := strconv.ParseUint(name[len("sst-"):], 10, 64); perr == nil && id > d.nextFileID {
				d.nextFileID = id
			}
			if !tracked[name] {
				orphanSSTs = append(orphanSSTs, name)
			}
			continue
		case !strings.HasPrefix(name, "wal-"):
			continue
		}
		if id, perr := strconv.ParseUint(name[len("wal-"):], 10, 64); perr == nil && id > d.walID {
			d.walID = id
		}
		oldSegments = append(oldSegments, name)
		done, err := wal.Replay(fs, name, now, func(r wal.Record) {
			if r.Seq <= st.flushedSeq {
				return
			}
			records = append(records, r)
		})
		if err != nil {
			return nil, now, err
		}
		now = done
	}
	for _, name := range orphanSSTs {
		if err := fs.Remove(name); err != nil {
			return nil, now, err
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	for i := range records {
		r := &records[i]
		d.mem.Put(r.Key, r.Value, r.ValueLen, r.Seq, r.Deleted)
		if r.Seq > d.seq {
			d.seq = r.Seq
		}
	}
	// Fresh active WAL segment, then make the replayed records durable
	// again (flush the recovered memtable) before the old segments are
	// retired — the same avoid-flush-during-recovery=false discipline
	// RocksDB defaults to.
	w, err := wal.Create(fs, d.walName(), cfg.Content)
	if err != nil {
		return nil, now, err
	}
	d.walW = w
	d.compactW.SetIdlePuller(d.pickL0Compaction)
	d.compactWD.SetIdlePuller(d.pickDeepCompaction)
	if d.mem.Len() > 0 {
		if err := d.rotateMemtable(); err != nil {
			return nil, now, err
		}
		if end := d.flushW.RunUntilDrained(); end > now {
			now = end
		}
		if d.fatal != nil {
			return nil, now, d.fatal
		}
	}
	for _, name := range oldSegments {
		if name == d.walW.Name() {
			continue
		}
		// Segments pulled into the recycle pool during the recovery
		// flush stay; remove only files not tracked by the new instance.
		if d.tracksSegment(name) {
			continue
		}
		if err := fs.Remove(name); err != nil {
			return nil, now, err
		}
	}
	return d, now, nil
}

// tracksSegment reports whether a WAL file name belongs to the live
// writer, the recycle pool, or an unflushed memtable.
func (d *DB) tracksSegment(name string) bool {
	if d.walW != nil && d.walW.Name() == name {
		return true
	}
	for _, w := range d.walPool {
		if w.Name() == name {
			return true
		}
	}
	for _, im := range d.imm {
		if im.walW != nil && im.walW.Name() == name {
			return true
		}
	}
	return false
}
