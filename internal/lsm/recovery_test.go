package lsm

import (
	"bytes"
	"testing"

	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// syncedEnv builds a content-mode environment with per-put WAL syncs so
// that every acknowledged write is durable.
func syncedEnv(t *testing.T, tweak func(*Config)) (*DB, func(cfg Config) (*DB, sim.Duration, error)) {
	t.Helper()
	db, _, fs := testEnv(t, 32, true, func(c *Config) {
		c.WALFlushBytes = 0 // sync every put
		if tweak != nil {
			tweak(c)
		}
	})
	reopen := func(cfg Config) (*DB, sim.Duration, error) {
		return Recover(fs, cfg, sim.NewRNG(99), 0)
	}
	return db, reopen
}

func TestRecoverAfterCleanClose(t *testing.T) {
	db, reopen := syncedEnv(t, func(c *Config) { c.MemtableBytes = 8 << 10 })
	var now sim.Duration
	var err error
	want := map[uint64][]byte{}
	for id := uint64(0); id < 300; id++ {
		v := []byte{byte(id), byte(id >> 8), 7}
		want[id] = v
		now, err = db.Put(now, kv.EncodeKey(id), v, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := reopen(db.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rnow == 0 {
		t.Fatal("recovery should charge I/O time")
	}
	for id, v := range want {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found {
			t.Fatalf("key %d lost after recovery: %v %v", id, found, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("key %d value corrupted after recovery", id)
		}
	}
}

func TestRecoverAfterCrash(t *testing.T) {
	// No Close, no FlushAll: some records live only in the WAL.
	db, reopen := syncedEnv(t, func(c *Config) { c.MemtableBytes = 16 << 10 })
	var now sim.Duration
	var err error
	for id := uint64(0); id < 500; id++ {
		v := []byte{byte(id % 251)}
		now, err = db.Put(now, kv.EncodeKey(id), v, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash by abandoning db (background work may be
	// mid-flight; the device state is whatever has been written).
	re, rnow, err := reopen(db.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 500; id++ {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found {
			t.Fatalf("synced key %d lost after crash recovery: %v %v", id, found, err)
		}
		if got[0] != byte(id%251) {
			t.Fatalf("key %d value wrong after crash recovery", id)
		}
	}
}

func TestRecoverPreservesTombstones(t *testing.T) {
	db, reopen := syncedEnv(t, func(c *Config) { c.MemtableBytes = 8 << 10 })
	var now sim.Duration
	var err error
	for id := uint64(0); id < 100; id++ {
		now, err = db.Put(now, kv.EncodeKey(id), []byte{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = db.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 100; id += 2 {
		now, err = db.Delete(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
	}
	re, rnow, err := reopen(db.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 100; id++ {
		_, _, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
		if want := id%2 == 1; found != want {
			t.Fatalf("key %d: found=%v after recovery, want %v", id, found, want)
		}
	}
}

func TestRecoveredDBAcceptsWrites(t *testing.T) {
	db, reopen := syncedEnv(t, nil)
	now, err := db.Put(0, kv.EncodeKey(1), []byte("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := reopen(db.cfg)
	if err != nil {
		t.Fatal(err)
	}
	rnow, err = re.Put(rnow, kv.EncodeKey(2), []byte("b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rnow, err = re.FlushAll(rnow); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[uint64]string{1: "a", 2: "b"} {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found || string(got) != want {
			t.Fatalf("key %d: %q %v %v", id, got, found, err)
		}
	}
}

func TestRecoverTwice(t *testing.T) {
	// Recovery must itself leave a recoverable state.
	db, reopen := syncedEnv(t, func(c *Config) { c.MemtableBytes = 8 << 10 })
	var now sim.Duration
	var err error
	for id := uint64(0); id < 200; id++ {
		now, err = db.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	re1, _, err := reopen(db.cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = re1 // crash again immediately
	re2, rnow, err := reopen(db.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 200; id++ {
		_, got, found, err := re2.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found || got[0] != byte(id) {
			t.Fatalf("key %d wrong after double recovery: %v %v %v", id, got, found, err)
		}
	}
}

func TestRecoverRequiresContentMode(t *testing.T) {
	_, _, fs := testEnv(t, 16, false, nil)
	cfg := NewConfig(8 << 20) // Content=false
	if _, _, err := Recover(fs, cfg, sim.NewRNG(1), 0); err == nil {
		t.Fatal("recovery without content mode should fail")
	}
}

// TestRecoverWithoutManifestBootstraps: a crash before the first flush
// leaves no manifest. Recovery must not wedge the database — it starts
// from a zero manifest, sweeps any surviving SSTs as orphans, replays
// the WAL, and the closing recovery flush writes the first real
// manifest.
func TestRecoverWithoutManifestBootstraps(t *testing.T) {
	_, _, fs := testEnv(t, 16, true, nil)
	cfg := NewConfig(8 << 20)
	cfg.Content = true
	db, now, err := Recover(fs, cfg, sim.NewRNG(1), 0)
	if err != nil {
		t.Fatalf("bootstrap recovery: %v", err)
	}
	if _, _, found, err := db.Get(now+1, kv.EncodeKey(1)); err != nil || found {
		t.Fatalf("bootstrapped db should be empty: found=%v err=%v", found, err)
	}
	if _, err := db.Put(now+2, kv.EncodeKey(1), []byte("a"), 1); err != nil {
		t.Fatalf("put on bootstrapped db: %v", err)
	}
	if _, got, found, err := db.Get(now+3, kv.EncodeKey(1)); err != nil || !found || string(got) != "a" {
		t.Fatalf("key 1 after bootstrap put: %q %v %v", got, found, err)
	}
}

func TestManifestEncodeDecode(t *testing.T) {
	st := manifestState{
		writeSeq:   42,
		seq:        1000,
		nextFileID: 17,
		walID:      5,
		levels:     [][]string{{"sst-1", "sst-2"}, {}, {"sst-3"}},
	}
	got, err := decodeManifest(st.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.writeSeq != 42 || got.seq != 1000 || got.nextFileID != 17 || got.walID != 5 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.levels) != 3 || len(got.levels[0]) != 2 || got.levels[2][0] != "sst-3" {
		t.Fatalf("levels mismatch: %+v", got.levels)
	}
	// Corruption is detected.
	enc := st.encode()
	enc[10] ^= 0xFF
	if _, err := decodeManifest(enc); err == nil {
		t.Fatal("corrupted manifest should fail decode")
	}
	if _, err := decodeManifest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short manifest should fail decode")
	}
}

func TestRecycledWALDoesNotResurrect(t *testing.T) {
	// After a flush recycles a WAL segment, recovery must not replay the
	// flushed generation's records on top of newer deletes.
	db, reopen := syncedEnv(t, func(c *Config) { c.MemtableBytes = 4 << 10 })
	var now sim.Duration
	var err error
	// Generation 1: many puts (rotates the WAL several times).
	for id := uint64(0); id < 100; id++ {
		now, err = db.Put(now, kv.EncodeKey(id), []byte{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = db.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	// Generation 2: delete everything.
	for id := uint64(0); id < 100; id++ {
		now, err = db.Delete(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = db.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	re, rnow, err := reopen(db.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 100; id++ {
		_, _, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatalf("deleted key %d resurrected by recovery", id)
		}
	}
}
