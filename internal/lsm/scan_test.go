package lsm

import (
	"bytes"
	"testing"

	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

func TestScanAcrossLevels(t *testing.T) {
	db, dev, _ := testEnv(t, 32, false, func(c *Config) {
		c.MemtableBytes = 8 << 10
		c.BaseLevelBytes = 32 << 10
		c.TargetFileBytes = 8 << 10
	})
	var now sim.Duration
	var err error
	// Three generations with interleaved flushes so versions of the
	// same keys spread over memtable, L0 and deeper levels.
	for gen := byte(0); gen < 3; gen++ {
		for id := uint64(0); id < 300; id++ {
			now, err = db.Put(now, kv.EncodeKey(id*2), nil, 64+int(gen))
			if err != nil {
				t.Fatal(err)
			}
		}
		if gen < 2 {
			if now, err = db.FlushAll(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	readsBefore := dev.Counters().ReadOps
	done, got, err := db.Scan(now, kv.EncodeKey(100), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("scan returned %d entries, want 50", len(got))
	}
	// Keys even, ascending, starting at 100; latest generation only.
	for i, e := range got {
		id, err := kv.DecodeKey(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(100+i*2) {
			t.Fatalf("entry %d: key %d, want %d", i, id, 100+i*2)
		}
		if e.ValueLen != 66 {
			t.Fatalf("entry %d: stale version (vlen %d)", i, e.ValueLen)
		}
	}
	if done < now {
		t.Fatal("scan time went backwards")
	}
	if dev.Counters().ReadOps == readsBefore {
		t.Fatal("scan over on-disk tables should charge reads")
	}
}

func TestScanSkipsTombstones(t *testing.T) {
	db, _, _ := testEnv(t, 16, false, func(c *Config) {
		c.MemtableBytes = 8 << 10
	})
	var now sim.Duration
	var err error
	for id := uint64(0); id < 20; id++ {
		now, err = db.Put(now, kv.EncodeKey(id), nil, 32)
		if err != nil {
			t.Fatal(err)
		}
	}
	if now, err = db.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 20; id += 2 {
		now, err = db.Delete(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
	}
	_, got, err := db.Scan(now, kv.EncodeKey(0), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("scan returned %d entries, want 10 (tombstones visible?)", len(got))
	}
	for _, e := range got {
		id, _ := kv.DecodeKey(e.Key)
		if id%2 == 0 {
			t.Fatalf("deleted key %d returned by scan", id)
		}
	}
}

func TestScanEmptyRange(t *testing.T) {
	db, _, _ := testEnv(t, 16, false, nil)
	now, err := db.Put(0, kv.EncodeKey(5), nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := db.Scan(now, kv.EncodeKey(100), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("scan past the last key returned %d entries", len(got))
	}
}

func TestScanContentMode(t *testing.T) {
	db, _, _ := testEnv(t, 16, true, func(c *Config) {
		c.MemtableBytes = 4 << 10
	})
	var now sim.Duration
	var err error
	want := map[uint64][]byte{}
	for id := uint64(0); id < 50; id++ {
		v := []byte{byte(id), byte(id + 1)}
		want[id] = v
		now, err = db.Put(now, kv.EncodeKey(id), v, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if now, err = db.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	_, got, err := db.Scan(now, kv.EncodeKey(10), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d entries", len(got))
	}
	for i, e := range got {
		id := uint64(10 + i)
		if !bytes.Equal(e.Value, want[id]) {
			t.Fatalf("value mismatch for key %d: %v", id, e.Value)
		}
	}
}
