package lsm

import (
	"bytes"
	"testing"

	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// TestRecoverStrandedWALSegment pins the name-collision regression: a
// crash can land after a memtable rotation created a fresh WAL segment
// but before any manifest recorded the new id. Recovery must advance
// its segment counter past every surviving file instead of minting a
// colliding name (ErrExist) — and must still replay the stranded
// segment's records.
func TestRecoverStrandedWALSegment(t *testing.T) {
	db, reopen := syncedEnv(t, nil)
	var now sim.Duration
	var err error
	for id := uint64(0); id < 50; id++ {
		now, err = db.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Flush: the manifest commits naming the current walID.
	if now, err = db.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	// More puts, then rotate WITHOUT pumping the flush worker: the new
	// segment exists on disk, but no manifest names its id.
	for id := uint64(50); id < 60; id++ {
		now, err = db.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.rotateMemtable(); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := reopen(db.cfg)
	if err != nil {
		t.Fatalf("recovery with stranded WAL segment: %v", err)
	}
	for id := uint64(0); id < 60; id++ {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found || !bytes.Equal(got, []byte{byte(id)}) {
			t.Fatalf("key %d lost after recovery (found=%v, err=%v)", id, found, err)
		}
	}
}

// TestRecoverOrphanSST pins the orphan-table half of the same crash
// window: an SST file written by a flush or compaction whose manifest
// commit never happened must be removed at recovery (no manifest level
// names it), and the file-id counter must advance past it so the next
// flush cannot collide.
func TestRecoverOrphanSST(t *testing.T) {
	db, reopen := syncedEnv(t, nil)
	var now sim.Duration
	var err error
	for id := uint64(0); id < 50; id++ {
		now, err = db.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if now, err = db.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	// Fake the orphan: a table file beyond the committed counter.
	orphan := "sst-000099"
	if _, err := db.fs.Create(orphan); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := reopen(db.cfg)
	if err != nil {
		t.Fatalf("recovery with orphan SST: %v", err)
	}
	for _, name := range re.fs.List() {
		if name == orphan {
			t.Fatalf("orphan %s survived recovery", orphan)
		}
	}
	if re.nextFileID < 99 {
		t.Fatalf("file-id counter %d not advanced past orphan 99", re.nextFileID)
	}
	// The next flush mints a fresh name without colliding.
	if rnow, err = re.Put(rnow, kv.EncodeKey(1000), []byte{7}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err = re.FlushAll(rnow); err != nil {
		t.Fatalf("post-recovery flush collided: %v", err)
	}
}
