// Package memtable implements the in-memory write buffer of the LSM
// engine as a skiplist keyed by user key. It tracks its approximate byte
// footprint so the engine can rotate memtables at the configured size,
// which is what paces flushes — and therefore the whole write path — in
// the simulation.
package memtable

import (
	"bytes"

	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

const maxHeight = 16

type node struct {
	entry kv.Entry
	next  [maxHeight]*node
}

// Memtable is a single-writer skiplist. It applies upsert semantics: a
// second Put of the same key replaces the previous version in place
// (sequence numbers still advance). With the paper's uniform-random
// workload over a large keyspace, in-memtable overwrites are rare, so
// this matches RocksDB's effective behaviour while keeping byte
// accounting simple.
type Memtable struct {
	head   *node
	height int
	rng    *sim.RNG

	entries  int
	sizeEst  int64 // approximate payload bytes (keys + values + overhead)
	overhead int64 // per-entry bookkeeping estimate
}

// New creates an empty memtable; rng drives skiplist tower heights.
func New(rng *sim.RNG) *Memtable {
	return &Memtable{
		head:     &node{},
		height:   1,
		rng:      rng,
		overhead: 32,
	}
}

// Len returns the number of live entries.
func (m *Memtable) Len() int { return m.entries }

// SizeBytes returns the approximate memory footprint used for rotation
// decisions.
func (m *Memtable) SizeBytes() int64 { return m.sizeEst }

func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Uint64()&3 == 0 { // p = 1/4
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, recording
// the rightmost node before it at every level in prev.
func (m *Memtable) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].entry.Key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Put inserts or replaces the entry for key. valueLen is the accounted
// payload size when value is nil.
func (m *Memtable) Put(key, value []byte, valueLen int, seq uint64, deleted bool) {
	if value != nil {
		valueLen = len(value)
	}
	var prev [maxHeight]*node
	existing := m.findGreaterOrEqual(key, &prev)
	if existing != nil && bytes.Equal(existing.entry.Key, key) {
		old := int64(len(existing.entry.Key)) + int64(existing.entry.ValueLen) + m.overhead
		existing.entry.Value = cloneBytes(value)
		existing.entry.ValueLen = valueLen
		existing.entry.Seq = seq
		existing.entry.Deleted = deleted
		m.sizeEst += int64(len(key)) + int64(valueLen) + m.overhead - old
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}
	n := &node{entry: kv.Entry{
		Key:      cloneBytes(key),
		Value:    cloneBytes(value),
		ValueLen: valueLen,
		Seq:      seq,
		Deleted:  deleted,
	}}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	m.entries++
	m.sizeEst += int64(len(key)) + int64(valueLen) + m.overhead
}

// Get returns the entry for key, or nil.
func (m *Memtable) Get(key []byte) *kv.Entry {
	n := m.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.entry.Key, key) {
		return &n.entry
	}
	return nil
}

// Iterator returns a kv.Iterator over all entries in ascending key order.
func (m *Memtable) Iterator() kv.Iterator {
	return &iterator{next: m.head.next[0]}
}

// IteratorFrom returns a kv.Iterator positioned before the first entry
// with key >= start.
func (m *Memtable) IteratorFrom(start []byte) kv.Iterator {
	return &iterator{next: m.findGreaterOrEqual(start, nil)}
}

type iterator struct {
	next *node
	cur  *node
}

func (it *iterator) Next() bool {
	if it.next == nil {
		it.cur = nil
		return false
	}
	it.cur = it.next
	it.next = it.next.next[0]
	return true
}

func (it *iterator) Entry() *kv.Entry { return &it.cur.entry }

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
