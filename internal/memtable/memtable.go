// Package memtable implements the in-memory write buffer of the LSM
// engine as a skiplist keyed by user key. It tracks its approximate byte
// footprint so the engine can rotate memtables at the configured size,
// which is what paces flushes — and therefore the whole write path — in
// the simulation.
package memtable

import (
	"bytes"

	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

const maxHeight = 16

// Arena chunk sizes. Chunks are fixed-size and never reallocated, so
// pointers into them stay valid; a memtable's entire footprint is a
// handful of chunks that die together when the memtable is flushed.
const (
	nodeChunk = 256      // nodes per chunk
	ptrChunk  = 1024     // tower pointers per chunk
	byteChunk = 16 << 10 // key/value bytes per chunk
)

// node is one skiplist entry. The tower is a variable-height slice carved
// from the memtable's pointer arena: the average tower height is 4/3
// levels (p = 1/4), so towers cost ~11 bytes per entry instead of the
// 128 bytes a fixed [16]*node would.
type node struct {
	entry kv.Entry
	tower []*node
}

// Memtable is a single-writer skiplist. It applies upsert semantics: a
// second Put of the same key replaces the previous version in place
// (sequence numbers still advance). With the paper's uniform-random
// workload over a large keyspace, in-memtable overwrites are rare, so
// this matches RocksDB's effective behaviour while keeping byte
// accounting simple.
//
// All node, tower and key storage comes from per-memtable arenas, so the
// steady-state Put path performs no heap allocation beyond the amortized
// arena chunk refills.
type Memtable struct {
	head   *node
	height int
	rng    *sim.RNG

	entries  int
	sizeEst  int64 // approximate payload bytes (keys + values + overhead)
	overhead int64 // per-entry bookkeeping estimate

	nodes []node  // current node chunk; nodesUsed entries consumed
	ptrs  []*node // current tower-pointer chunk
	bytes []byte  // current key/value byte chunk
}

// New creates an empty memtable; rng drives skiplist tower heights.
func New(rng *sim.RNG) *Memtable {
	m := &Memtable{
		height:   1,
		rng:      rng,
		overhead: 32,
	}
	m.head = m.newNode(maxHeight)
	return m
}

// newNode carves a node with a tower of the given height from the arenas.
func (m *Memtable) newNode(height int) *node {
	if len(m.nodes) == cap(m.nodes) {
		m.nodes = make([]node, 0, nodeChunk)
	}
	m.nodes = m.nodes[:len(m.nodes)+1]
	n := &m.nodes[len(m.nodes)-1]
	if cap(m.ptrs)-len(m.ptrs) < height {
		m.ptrs = make([]*node, 0, ptrChunk)
	}
	u := len(m.ptrs)
	m.ptrs = m.ptrs[:u+height]
	n.tower = m.ptrs[u : u+height : u+height]
	return n
}

// cloneBytes copies b into the byte arena (nil stays nil).
func (m *Memtable) cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	if cap(m.bytes)-len(m.bytes) < len(b) {
		size := byteChunk
		if len(b) > size {
			size = len(b)
		}
		m.bytes = make([]byte, 0, size)
	}
	u := len(m.bytes)
	m.bytes = m.bytes[:u+len(b)]
	out := m.bytes[u : u+len(b) : u+len(b)]
	copy(out, b)
	return out
}

// Len returns the number of live entries.
func (m *Memtable) Len() int { return m.entries }

// SizeBytes returns the approximate memory footprint used for rotation
// decisions.
func (m *Memtable) SizeBytes() int64 { return m.sizeEst }

func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Uint64()&3 == 0 { // p = 1/4
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, recording
// the rightmost node before it at every level in prev. The target key is
// decomposed into comparison words once, so each probe along the walk is
// two word compares instead of a generic byte comparison.
func (m *Memtable) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	hi, lo, fast := kv.DecomposeKey(key)
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for {
			next := x.tower[level]
			if next == nil {
				break
			}
			var c int
			if nk := next.entry.Key; fast && len(nk) == kv.KeySize {
				c = kv.CompareKeyWords(nk, hi, lo)
			} else {
				c = kv.CompareKeys(nk, key)
			}
			if c >= 0 {
				break
			}
			x = next
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.tower[0]
}

// Put inserts or replaces the entry for key. valueLen is the accounted
// payload size when value is nil.
func (m *Memtable) Put(key, value []byte, valueLen int, seq uint64, deleted bool) {
	if value != nil {
		valueLen = len(value)
	}
	var prev [maxHeight]*node
	existing := m.findGreaterOrEqual(key, &prev)
	if existing != nil && bytes.Equal(existing.entry.Key, key) {
		old := int64(len(existing.entry.Key)) + int64(existing.entry.ValueLen) + m.overhead
		existing.entry.Value = m.cloneBytes(value)
		existing.entry.ValueLen = valueLen
		existing.entry.Seq = seq
		existing.entry.Deleted = deleted
		m.sizeEst += int64(len(key)) + int64(valueLen) + m.overhead - old
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}
	n := m.newNode(h)
	n.entry = kv.Entry{
		Key:      m.cloneBytes(key),
		Value:    m.cloneBytes(value),
		ValueLen: valueLen,
		Seq:      seq,
		Deleted:  deleted,
	}
	for level := 0; level < h; level++ {
		n.tower[level] = prev[level].tower[level]
		prev[level].tower[level] = n
	}
	m.entries++
	m.sizeEst += int64(len(key)) + int64(valueLen) + m.overhead
}

// Get returns the entry for key, or nil.
func (m *Memtable) Get(key []byte) *kv.Entry {
	n := m.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.entry.Key, key) {
		return &n.entry
	}
	return nil
}

// Iterator returns a kv.Iterator over all entries in ascending key order.
func (m *Memtable) Iterator() kv.Iterator {
	return &iterator{next: m.head.tower[0]}
}

// IteratorFrom returns a kv.Iterator positioned before the first entry
// with key >= start.
func (m *Memtable) IteratorFrom(start []byte) kv.Iterator {
	return &iterator{next: m.findGreaterOrEqual(start, nil)}
}

type iterator struct {
	next *node
	cur  *node
}

func (it *iterator) Next() bool {
	if it.next == nil {
		it.cur = nil
		return false
	}
	it.cur = it.next
	it.next = it.next.tower[0]
	return true
}

func (it *iterator) Entry() *kv.Entry { return &it.cur.entry }
