package memtable

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

func newMT() *Memtable { return New(sim.NewRNG(1)) }

func TestPutGet(t *testing.T) {
	m := newMT()
	m.Put(kv.EncodeKey(5), []byte("hello"), 0, 1, false)
	e := m.Get(kv.EncodeKey(5))
	if e == nil || string(e.Value) != "hello" || e.Seq != 1 {
		t.Fatalf("Get = %+v", e)
	}
	if m.Get(kv.EncodeKey(6)) != nil {
		t.Fatal("missing key should return nil")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestUpsertReplaces(t *testing.T) {
	m := newMT()
	m.Put(kv.EncodeKey(1), []byte("v1"), 0, 1, false)
	size1 := m.SizeBytes()
	m.Put(kv.EncodeKey(1), []byte("v2-longer"), 0, 2, false)
	if m.Len() != 1 {
		t.Fatalf("Len after upsert = %d, want 1", m.Len())
	}
	e := m.Get(kv.EncodeKey(1))
	if string(e.Value) != "v2-longer" || e.Seq != 2 {
		t.Fatalf("upsert failed: %+v", e)
	}
	if m.SizeBytes() <= size1 {
		t.Fatal("size should grow with longer value")
	}
}

func TestTombstone(t *testing.T) {
	m := newMT()
	m.Put(kv.EncodeKey(1), []byte("v"), 0, 1, false)
	m.Put(kv.EncodeKey(1), nil, 0, 2, true)
	e := m.Get(kv.EncodeKey(1))
	if e == nil || !e.Deleted {
		t.Fatalf("tombstone not recorded: %+v", e)
	}
}

func TestAccountingOnlyMode(t *testing.T) {
	m := newMT()
	m.Put(kv.EncodeKey(1), nil, 4000, 1, false)
	e := m.Get(kv.EncodeKey(1))
	if e.Value != nil || e.ValueLen != 4000 {
		t.Fatalf("accounting entry wrong: %+v", e)
	}
	if m.SizeBytes() < 4000 {
		t.Fatalf("SizeBytes %d should include synthetic value length", m.SizeBytes())
	}
}

func TestIteratorOrder(t *testing.T) {
	m := newMT()
	ids := []uint64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for i, id := range ids {
		m.Put(kv.EncodeKey(id), nil, 10, uint64(i), false)
	}
	it := m.Iterator()
	var got []uint64
	for it.Next() {
		id, err := kv.DecodeKey(it.Entry().Key)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, id)
	}
	if len(got) != len(ids) {
		t.Fatalf("iterated %d entries, want %d", len(got), len(ids))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("iterator out of order: %v", got)
	}
}

func TestEmptyIterator(t *testing.T) {
	it := newMT().Iterator()
	if it.Next() {
		t.Fatal("empty iterator should be exhausted")
	}
}

func TestSizeGrowsPerEntry(t *testing.T) {
	m := newMT()
	var last int64
	for i := uint64(0); i < 100; i++ {
		m.Put(kv.EncodeKey(i), nil, 100, i, false)
		if m.SizeBytes() <= last {
			t.Fatal("SizeBytes must grow with distinct inserts")
		}
		last = m.SizeBytes()
	}
}

func TestKeyIsCopied(t *testing.T) {
	m := newMT()
	key := kv.EncodeKey(1)
	val := []byte("abc")
	m.Put(key, val, 0, 1, false)
	key[15] = 0xFF // mutate caller's buffers
	val[0] = 'X'
	e := m.Get(kv.EncodeKey(1))
	if e == nil {
		t.Fatal("mutating caller's key buffer affected the memtable")
	}
	if string(e.Value) != "abc" {
		t.Fatal("mutating caller's value buffer affected the memtable")
	}
}

// Property: memtable matches a reference map under random workloads.
func TestMemtableMatchesMapProperty(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		m := New(sim.NewRNG(seed))
		ref := map[uint64]uint64{} // id -> latest seq
		seq := uint64(0)
		rng := sim.NewRNG(seed + 1)
		for range ops {
			id := rng.Uint64n(64)
			seq++
			m.Put(kv.EncodeKey(id), nil, 8, seq, false)
			ref[id] = seq
		}
		if m.Len() != len(ref) {
			return false
		}
		for id, want := range ref {
			e := m.Get(kv.EncodeKey(id))
			if e == nil || e.Seq != want {
				return false
			}
		}
		// Iterator yields exactly the reference keys, sorted.
		it := m.Iterator()
		var prev []byte
		count := 0
		for it.Next() {
			k := it.Entry().Key
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				return false
			}
			prev = append(prev[:0], k...)
			count++
		}
		return count == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
