// Package perf implements the pinned benchmark suite behind `ptsbench
// bench`: a fixed set of micro and figure-level workloads measured with
// wall-clock and allocation counters, serialized to JSON so the repo can
// commit a baseline (BENCH_baseline.json) and CI can flag regressions
// against it. The suite's workload shapes are identical in quick and
// full mode — quick only lowers iteration counts — so numbers stay
// comparable across modes.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ptsbench/internal/betree"
	"ptsbench/internal/blockdev"
	"ptsbench/internal/btree"
	"ptsbench/internal/core"
	_ "ptsbench/internal/engine/all" // register every engine driver for core.Run
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/lsm"
	"ptsbench/internal/memtable"
	"ptsbench/internal/replica"
	"ptsbench/internal/sim"
	"ptsbench/internal/sstable"
	"ptsbench/internal/store"
)

// Metric is one measured suite entry.
type Metric struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// VirtualPerWall is the simulated virtual time per wall-clock second
	// (figure-level workloads only): the headline "how fast does the
	// simulator run" number.
	VirtualPerWall float64 `json:"virtual_per_wall,omitempty"`
}

// Result is a full suite run.
type Result struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Quick     bool     `json:"quick"`
	Metrics   []Metric `json:"metrics"`
}

// Metric returns the named metric, or nil.
func (r *Result) Metric(name string) *Metric {
	for i := range r.Metrics {
		if r.Metrics[i].Name == name {
			return &r.Metrics[i]
		}
	}
	return nil
}

// Options tune a suite run.
type Options struct {
	// Quick divides per-metric iteration counts (for CI smoke runs).
	Quick bool
}

// measure times iters executions of fn (after one untimed warmup call)
// and returns the per-op wall and allocation figures. Single-iteration
// metrics (the figure-level cells, already seconds long and self-
// warming) skip the warmup rather than double their cost.
func measure(name string, iters int, fn func(i int)) Metric {
	if iters > 1 {
		fn(0) // warmup: page in code and steady-state structures
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(i)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return Metric{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
}

// RunSuite executes the pinned suite and returns its results.
func RunSuite(o Options) (*Result, error) {
	div := 1
	if o.Quick {
		div = 8
	}
	res := &Result{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     o.Quick,
	}

	// ---- micro: memtable ----
	{
		m := memtable.New(sim.NewRNG(1))
		key := make([]byte, kv.KeySize)
		n := 400000 / div
		res.Metrics = append(res.Metrics, measure("memtable-put", n, func(i int) {
			kv.AppendKey(key, uint64(i%100000))
			m.Put(key, nil, 128, uint64(i), false)
		}))
		res.Metrics = append(res.Metrics, measure("memtable-get", n, func(i int) {
			kv.AppendKey(key, uint64(i%100000))
			m.Get(key)
		}))
	}

	// ---- micro: sstable build ----
	{
		entries := make([]kv.Entry, 10000)
		for i := range entries {
			entries[i] = kv.Entry{Key: kv.EncodeKey(uint64(i)), ValueLen: 128, Seq: uint64(i)}
		}
		n := 80 / div
		res.Metrics = append(res.Metrics, measure("sstable-build-10k", n, func(i int) {
			b := sstable.NewBuilderHint(4096, sstable.DefaultBlockBytes, false, len(entries))
			for j := range entries {
				if err := b.Add(&entries[j]); err != nil {
					panic(err)
				}
			}
			b.Finish(uint64(i))
		}))
	}

	// ---- micro: FTL ----
	{
		dev, err := flash.NewDevice(flash.Config{
			LogicalBytes:  256 << 20,
			PageSize:      4096,
			PagesPerBlock: 256,
			Profile:       flash.ProfileSSD1().Scaled(1024),
		})
		if err != nil {
			return nil, err
		}
		pages := dev.LogicalPages()
		var now sim.Duration
		for p := int64(0); p < pages; p += 256 {
			now = dev.SubmitWrite(now, p, 256)
		}
		rng := sim.NewRNG(1)
		n := 400000 / div
		res.Metrics = append(res.Metrics, measure("ftl-random-write", n, func(int) {
			now = dev.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
		}))
		res.Metrics = append(res.Metrics, measure("ftl-write-range-64", 8000/div, func(int) {
			lpn := int64(rng.Uint64n(uint64(pages - 64)))
			now = dev.SubmitWrite(now, lpn, 64)
		}))
	}

	// ---- micro: striped reads on a multi-lane device ----
	{
		dev, err := flash.NewDevice(flash.Config{
			LogicalBytes:  64 << 20,
			PageSize:      4096,
			PagesPerBlock: 64,
			Profile:       flash.ProfileSSD1().Scaled(4096).WithParallelism(4, 4),
		})
		if err != nil {
			return nil, err
		}
		pages := dev.LogicalPages()
		rng := sim.NewRNG(7)
		var now sim.Duration
		res.Metrics = append(res.Metrics, measure("striped-read-16lane", 400000/div, func(int) {
			now = dev.SubmitRead(now, int64(rng.Uint64n(uint64(pages-16))), 16)
		}))
	}

	// ---- steady-state op loop (LSM put through the whole stack) ----
	{
		ssd, err := flash.NewDevice(flash.Config{
			LogicalBytes:  512 << 20,
			PageSize:      4096,
			PagesPerBlock: 256,
			Profile:       flash.ProfileSSD1().Scaled(512),
		})
		if err != nil {
			return nil, err
		}
		fs, err := extfs.Mount(blockdev.New(ssd), extfs.Options{})
		if err != nil {
			return nil, err
		}
		db, err := lsm.Open(fs, lsm.NewConfig(128<<20), sim.NewRNG(1))
		if err != nil {
			return nil, err
		}
		rng := sim.NewRNG(2)
		key := make([]byte, kv.KeySize)
		var now sim.Duration
		res.Metrics = append(res.Metrics, measure("lsm-put", 200000/div, func(int) {
			kv.AppendKey(key, rng.Uint64n(50000))
			var err error
			if now, err = db.Put(now, key, nil, 512); err != nil {
				panic(err)
			}
		}))
	}

	// ---- steady-state op loop (Bε-tree put through the whole stack) ----
	{
		ssd, err := flash.NewDevice(flash.Config{
			LogicalBytes:  512 << 20,
			PageSize:      4096,
			PagesPerBlock: 256,
			Profile:       flash.ProfileSSD1().Scaled(512),
		})
		if err != nil {
			return nil, err
		}
		fs, err := extfs.Mount(blockdev.New(ssd), extfs.Options{})
		if err != nil {
			return nil, err
		}
		tr, err := betree.Open(fs, betree.NewConfig(128<<20))
		if err != nil {
			return nil, err
		}
		rng := sim.NewRNG(2)
		key := make([]byte, kv.KeySize)
		var now sim.Duration
		res.Metrics = append(res.Metrics, measure("betree-put", 200000/div, func(int) {
			kv.AppendKey(key, rng.Uint64n(50000))
			var err error
			if now, err = tr.Put(now, key, nil, 512); err != nil {
				panic(err)
			}
		}))
		// Reads against the tree the put loop populated: buffer probes
		// down the spine plus the leaf search, cache hits and misses
		// included.
		res.Metrics = append(res.Metrics, measure("betree-get", 200000/div, func(int) {
			kv.AppendKey(key, rng.Uint64n(50000))
			var err error
			if now, _, _, err = tr.Get(now, key); err != nil {
				panic(err)
			}
		}))
	}

	// ---- steady-state op loop (B+Tree put through the whole stack) ----
	{
		ssd, err := flash.NewDevice(flash.Config{
			LogicalBytes:  512 << 20,
			PageSize:      4096,
			PagesPerBlock: 256,
			Profile:       flash.ProfileSSD1().Scaled(512),
		})
		if err != nil {
			return nil, err
		}
		fs, err := extfs.Mount(blockdev.New(ssd), extfs.Options{})
		if err != nil {
			return nil, err
		}
		tr, err := btree.Open(fs, btree.NewConfig(128<<20))
		if err != nil {
			return nil, err
		}
		rng := sim.NewRNG(2)
		key := make([]byte, kv.KeySize)
		var now sim.Duration
		res.Metrics = append(res.Metrics, measure("btree-put", 200000/div, func(int) {
			kv.AppendKey(key, rng.Uint64n(50000))
			var err error
			if now, err = tr.Put(now, key, nil, 512); err != nil {
				panic(err)
			}
		}))
	}

	// ---- serving layer (sharded store, multi-client put epochs) ----
	// One op = one submission epoch: 8 clients each submit a put, one
	// Pump services all 4 shards on their workers. Measures the whole
	// pipeline — routing, intake sorting, worker handoff, completion
	// merge — on top of the engines' own put cost.
	{
		st, err := store.New(4, func(i int) (store.Stack, error) {
			ssd, err := flash.NewDevice(flash.Config{
				LogicalBytes:  128 << 20,
				PageSize:      4096,
				PagesPerBlock: 256,
				Profile:       flash.ProfileSSD1().Scaled(512),
			})
			if err != nil {
				return store.Stack{}, err
			}
			dev := blockdev.New(ssd)
			fs, err := extfs.Mount(dev, extfs.Options{})
			if err != nil {
				return store.Stack{}, err
			}
			db, err := lsm.Open(fs, lsm.NewConfig(32<<20), sim.NewRNG(uint64(10+i)))
			if err != nil {
				return store.Stack{}, err
			}
			return store.Stack{Engine: db, Dev: dev}, nil
		})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		const clients = 8
		rng := sim.NewRNG(2)
		keys := make([][]byte, clients)
		clocks := make([]sim.Duration, clients)
		for c := range keys {
			keys[c] = make([]byte, kv.KeySize)
		}
		res.Metrics = append(res.Metrics, measure("store-put-sharded", 25000/div, func(int) {
			for c := 0; c < clients; c++ {
				id := rng.Uint64n(50000)
				kv.AppendKey(keys[c], id)
				st.Submit(store.Op{
					Kind:     store.Put,
					Client:   c,
					Submit:   clocks[c],
					KeyID:    id,
					Key:      keys[c],
					ValueLen: 512,
				})
			}
			for _, comp := range st.Pump() {
				if comp.Err != nil {
					panic(comp.Err)
				}
				clocks[comp.Client] = comp.Done
			}
		}))
	}

	// ---- serving layer (replicated store, multi-client put epochs) ----
	// Same epoch shape as store-put-sharded, but every shard is a
	// 3-replica chain group: each put runs three full engine stacks and
	// the group bookkeeping (per-replica clocks, ack forwarding) before
	// acknowledging. Pins the replication layer's overhead per epoch.
	{
		st, err := store.New(2, func(i int) (store.Stack, error) {
			members := make([]replica.Member, 3)
			devs := make([]blockdev.Host, 3)
			for r := range members {
				ssd, err := flash.NewDevice(flash.Config{
					LogicalBytes:  128 << 20,
					PageSize:      4096,
					PagesPerBlock: 256,
					Profile:       flash.ProfileSSD1().Scaled(512),
				})
				if err != nil {
					return store.Stack{}, err
				}
				dev := blockdev.New(ssd)
				fs, err := extfs.Mount(dev, extfs.Options{})
				if err != nil {
					return store.Stack{}, err
				}
				db, err := lsm.Open(fs, lsm.NewConfig(32<<20), sim.NewRNG(uint64(30+i*8+r)))
				if err != nil {
					return store.Stack{}, err
				}
				members[r] = replica.Member{Engine: db}
				devs[r] = dev
			}
			g, err := replica.New(replica.Chain, members)
			if err != nil {
				return store.Stack{}, err
			}
			return store.Stack{Engine: g, Dev: devs[0], Devs: devs}, nil
		})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		const clients = 8
		rng := sim.NewRNG(3)
		keys := make([][]byte, clients)
		clocks := make([]sim.Duration, clients)
		for c := range keys {
			keys[c] = make([]byte, kv.KeySize)
		}
		res.Metrics = append(res.Metrics, measure("store-put-replicated", 10000/div, func(int) {
			for c := 0; c < clients; c++ {
				id := rng.Uint64n(50000)
				kv.AppendKey(keys[c], id)
				st.Submit(store.Op{
					Kind:     store.Put,
					Client:   c,
					Submit:   clocks[c],
					KeyID:    id,
					Key:      keys[c],
					ValueLen: 512,
				})
			}
			for _, comp := range st.Pump() {
				if comp.Err != nil {
					panic(comp.Err)
				}
				clocks[comp.Client] = comp.Done
			}
		}))
	}

	// ---- checkpoint cycle (dirty a subtree, checkpoint, measure) ----
	// Exercises the cowtree core end to end per op: dirty-set snapshot
	// with ancestor closure, bottom-up sort, copy-on-write page writes,
	// metadata commit, deferred-extent release, journal recycle.
	{
		ssd, err := flash.NewDevice(flash.Config{
			LogicalBytes:  512 << 20,
			PageSize:      4096,
			PagesPerBlock: 256,
			Profile:       flash.ProfileSSD1().Scaled(512),
		})
		if err != nil {
			return nil, err
		}
		fs, err := extfs.Mount(blockdev.New(ssd), extfs.Options{})
		if err != nil {
			return nil, err
		}
		tr, err := btree.Open(fs, btree.NewConfig(128<<20))
		if err != nil {
			return nil, err
		}
		key := make([]byte, kv.KeySize)
		var now sim.Duration
		for i := uint64(0); i < 50000; i++ {
			kv.AppendKey(key, i)
			if now, err = tr.Put(now, key, nil, 512); err != nil {
				return nil, err
			}
		}
		if now, err = tr.FlushAll(now); err != nil {
			return nil, err
		}
		rng := sim.NewRNG(3)
		res.Metrics = append(res.Metrics, measure("checkpoint-cycle", 2000/div, func(int) {
			base := rng.Uint64n(50000 - 64)
			for j := uint64(0); j < 64; j++ {
				kv.AppendKey(key, base+j)
				var err error
				if now, err = tr.Put(now, key, nil, 512); err != nil {
					panic(err)
				}
			}
			var err error
			if now, err = tr.FlushAll(now); err != nil {
				panic(err)
			}
		}))
	}

	// ---- figure-level: Fig 2 cells at the benchmark scale ----
	// Always the quick figure shape (60 virtual minutes at Scale 256),
	// so quick and full suite runs stay comparable.
	for _, cell := range []struct {
		name   string
		engine core.EngineKind
	}{{"fig2-lsm-scale256", core.LSM}, {"fig2-btree-scale256", core.BTree}, {"fig2-betree-scale256", core.Betree}} {
		spec := core.Spec{
			Engine:   cell.engine,
			Scale:    256,
			Duration: 60 * time.Minute,
			Seed:     1,
		}
		var virtual sim.Duration
		m := measure(cell.name, 1, func(int) {
			r, err := core.Run(spec)
			if err != nil {
				panic(err)
			}
			virtual = r.LoadDuration + spec.Duration
		})
		m.VirtualPerWall = float64(virtual) / m.NsPerOp
		res.Metrics = append(res.Metrics, m)
	}
	return res, nil
}

// GateAllocs enforces a hard allocs/op ceiling on the named metrics:
// unlike the suite-wide Compare (whose ns/op threshold must absorb
// machine variance), allocations per op are deterministic, so the gate
// threshold can sit just above measurement granularity and fail the
// build on any real regression. A gated metric missing from either
// side is itself a failure — the gate must never silently thin out.
func GateAllocs(base, cur *Result, names []string, threshold float64) []Regression {
	var out []Regression
	for _, name := range names {
		bm, cm := base.Metric(name), cur.Metric(name)
		if cm == nil {
			out = append(out, Regression{Name: name, Field: "allocs/op (gate)", NoBaseline: true, MissingFrom: "run"})
			continue
		}
		if bm == nil {
			out = append(out, Regression{Name: name, Field: "allocs/op (gate)", NoBaseline: true, MissingFrom: "baseline"})
			continue
		}
		// +1 keeps the ratio meaningful for zero-alloc metrics (0 -> 1
		// alloc/op fails only through the absolute slack).
		if ratio := (cm.AllocsPerOp + 1) / (bm.AllocsPerOp + 1); ratio > threshold {
			out = append(out, Regression{Name: bm.Name, Field: "allocs/op (gate)", Base: bm.AllocsPerOp, Now: cm.AllocsPerOp, Ratio: ratio})
		}
	}
	return out
}

// WriteFile serializes the result as indented JSON.
func (r *Result) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a previously written result.
func ReadFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Regression is one metric that exceeded its threshold against the
// baseline, or a metric missing from a side that must carry it
// (NoBaseline + MissingFrom) — new benchmarks must land with a
// refreshed baseline, or they would silently dodge the CI diff
// forever, and a gated metric that disappears from the suite must fail
// until the gate list is updated.
type Regression struct {
	Name       string
	Field      string
	Base       float64
	Now        float64
	Ratio      float64
	NoBaseline bool
	// MissingFrom names the side a NoBaseline finding is missing from:
	// "baseline" (a new metric) or "run" (a gated metric the suite no
	// longer produces).
	MissingFrom string
}

func (r Regression) String() string {
	if r.NoBaseline {
		if r.MissingFrom == "run" {
			return fmt.Sprintf("%s is alloc-gated but missing from the current run — remove it from the gate list or restore the benchmark", r.Name)
		}
		if r.Field != "" {
			return fmt.Sprintf("%s is alloc-gated but has no baseline entry — refresh the baseline file", r.Name)
		}
		return fmt.Sprintf("%s is new, no baseline — refresh the baseline file to cover it", r.Name)
	}
	return fmt.Sprintf("%s %s regressed %.2fx (baseline %.1f, now %.1f)",
		r.Name, r.Field, r.Ratio, r.Base, r.Now)
}

// Compare flags metrics of cur that regressed beyond the thresholds
// relative to base. nsThreshold is deliberately generous (wall time
// varies across machines); allocThreshold can be tight because
// allocations per op are machine-independent. Metrics present only in
// the baseline are skipped (a removed benchmark is visible in review);
// metrics present only in the current run are reported as "new, no
// baseline" failures.
func Compare(base, cur *Result, nsThreshold, allocThreshold float64) []Regression {
	var out []Regression
	for i := range cur.Metrics {
		if base.Metric(cur.Metrics[i].Name) == nil {
			out = append(out, Regression{Name: cur.Metrics[i].Name, NoBaseline: true, MissingFrom: "baseline"})
		}
	}
	for _, bm := range base.Metrics {
		cm := cur.Metric(bm.Name)
		if cm == nil {
			continue
		}
		if bm.NsPerOp > 0 && nsThreshold > 0 {
			if ratio := cm.NsPerOp / bm.NsPerOp; ratio > nsThreshold {
				out = append(out, Regression{Name: bm.Name, Field: "ns/op", Base: bm.NsPerOp, Now: cm.NsPerOp, Ratio: ratio})
			}
		}
		if allocThreshold > 0 {
			// +1 guards the zero-alloc metrics (0 -> 1 alloc should fail
			// a 2x threshold only via the absolute +1 slack).
			if ratio := (cm.AllocsPerOp + 1) / (bm.AllocsPerOp + 1); ratio > allocThreshold {
				out = append(out, Regression{Name: bm.Name, Field: "allocs/op", Base: bm.AllocsPerOp, Now: cm.AllocsPerOp, Ratio: ratio})
			}
		}
	}
	return out
}
