package perf

import (
	"path/filepath"
	"testing"
)

func TestSuiteRunsAndRoundTrips(t *testing.T) {
	res, err := RunSuite(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) < 8 {
		t.Fatalf("suite produced only %d metrics", len(res.Metrics))
	}
	for _, m := range res.Metrics {
		if m.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive ns/op %v", m.Name, m.NsPerOp)
		}
	}
	for _, name := range []string{"fig2-lsm-scale256", "fig2-btree-scale256", "fig2-betree-scale256"} {
		m := res.Metric(name)
		if m == nil {
			t.Fatalf("missing %s", name)
		}
		if m.VirtualPerWall <= 0 {
			t.Fatalf("%s: missing virtual-per-wall ratio", name)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != len(res.Metrics) {
		t.Fatalf("round trip lost metrics: %d vs %d", len(back.Metrics), len(res.Metrics))
	}

	// Self-comparison is regression-free; a doctored baseline flags one.
	if regs := Compare(back, res, 10, 2); len(regs) != 0 {
		t.Fatalf("self comparison reported regressions: %v", regs)
	}
	doctored := *back
	doctored.Metrics = append([]Metric(nil), back.Metrics...)
	doctored.Metrics[0].NsPerOp /= 100
	doctored.Metrics[0].AllocsPerOp = 0
	if regs := Compare(&doctored, res, 10, 2); len(regs) == 0 {
		t.Fatal("doctored baseline produced no regression")
	}
}
