package perf

import (
	"path/filepath"
	"testing"
)

func TestSuiteRunsAndRoundTrips(t *testing.T) {
	res, err := RunSuite(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) < 8 {
		t.Fatalf("suite produced only %d metrics", len(res.Metrics))
	}
	for _, m := range res.Metrics {
		if m.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive ns/op %v", m.Name, m.NsPerOp)
		}
	}
	for _, name := range []string{"fig2-lsm-scale256", "fig2-btree-scale256", "fig2-betree-scale256"} {
		m := res.Metric(name)
		if m == nil {
			t.Fatalf("missing %s", name)
		}
		if m.VirtualPerWall <= 0 {
			t.Fatalf("%s: missing virtual-per-wall ratio", name)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != len(res.Metrics) {
		t.Fatalf("round trip lost metrics: %d vs %d", len(back.Metrics), len(res.Metrics))
	}

	// Self-comparison is regression-free; a doctored baseline flags one.
	if regs := Compare(back, res, 10, 2); len(regs) != 0 {
		t.Fatalf("self comparison reported regressions: %v", regs)
	}
	doctored := *back
	doctored.Metrics = append([]Metric(nil), back.Metrics...)
	doctored.Metrics[0].NsPerOp /= 100
	doctored.Metrics[0].AllocsPerOp = 0
	if regs := Compare(&doctored, res, 10, 2); len(regs) == 0 {
		t.Fatal("doctored baseline produced no regression")
	}
}

func TestCompareFlagsMetricsMissingFromBaseline(t *testing.T) {
	base := &Result{Metrics: []Metric{{Name: "a", NsPerOp: 100, AllocsPerOp: 1}}}
	cur := &Result{Metrics: []Metric{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "b", NsPerOp: 50, AllocsPerOp: 0},
	}}
	regs := Compare(base, cur, 10, 2)
	if len(regs) != 1 || !regs[0].NoBaseline || regs[0].Name != "b" {
		t.Fatalf("want one no-baseline failure for b, got %v", regs)
	}
	// A metric only in the baseline (removed benchmark) is not flagged —
	// the removal is visible in the baseline diff itself.
	if regs := Compare(cur, base, 10, 2); len(regs) != 0 {
		t.Fatalf("baseline-only metric should not flag: %v", regs)
	}
}

func TestGateAllocs(t *testing.T) {
	base := &Result{Metrics: []Metric{
		{Name: "zero", AllocsPerOp: 0},
		{Name: "small", AllocsPerOp: 0.3},
	}}
	cur := &Result{Metrics: []Metric{
		{Name: "zero", AllocsPerOp: 0.05},
		{Name: "small", AllocsPerOp: 0.31},
	}}
	if regs := GateAllocs(base, cur, []string{"zero", "small"}, 1.1); len(regs) != 0 {
		t.Fatalf("within-threshold gate tripped: %v", regs)
	}
	cur.Metrics[0].AllocsPerOp = 0.5 // 0 -> 0.5 allocs/op: (1.5/1.0) > 1.1
	regs := GateAllocs(base, cur, []string{"zero", "small"}, 1.1)
	if len(regs) != 1 || regs[0].Name != "zero" {
		t.Fatalf("want a gate failure for zero, got %v", regs)
	}
	// A gated metric missing from either side is itself a failure.
	regs = GateAllocs(base, cur, []string{"ghost"}, 1.1)
	if len(regs) != 1 || !regs[0].NoBaseline {
		t.Fatalf("missing gated metric must fail: %v", regs)
	}
}
