package replica_test

import (
	"bytes"
	"fmt"
	"testing"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/engine"
	_ "ptsbench/internal/engine/all"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/kvtest"
	"ptsbench/internal/replica"
	"ptsbench/internal/sim"
	"ptsbench/internal/store"
)

// durability returns the engine tunables that make every acknowledged
// write durable across a restart, mirroring the crash harness: a fully
// synced WAL for the LSM and per-op journal syncs for the B-tree
// family (small leaves/memtables so structure churn participates).
func durability(eng string) map[string]string {
	if eng == "lsm" {
		return map[string]string{"memtable_bytes": "16384", "wal_flush_bytes": "0"}
	}
	return map[string]string{"journal_sync": "true", "leaf_page_bytes": "2048"}
}

// replicaParts keeps one replica's stack pieces that outlive the
// engine: recovery needs the filesystem and sized config back.
type replicaParts struct {
	dev *blockdev.Device
	fs  *extfs.FS
	cfg engine.Config
}

// openReplicaStack builds one replica's full simulated stack the way
// core.Run builds per-shard stacks: private flash device, block device,
// filesystem and engine.
func openReplicaStack(t *testing.T, drv engine.Driver, content bool, tunables map[string]string, rngSeed uint64) (engine.Engine, replicaParts) {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  32 << 20,
		PageSize:      4096,
		PagesPerBlock: 64,
		Profile:       flash.ProfileSSD1().Scaled(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.New(ssd)
	if content {
		dev.EnableContentStore()
	}
	fs, err := extfs.Mount(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := drv.Configure(engine.Sizing{DatasetBytes: 16 << 20})
	if err := cfg.ApplyTunables(tunables); err != nil {
		t.Fatal(err)
	}
	eng, err := cfg.Open(engine.Env{FS: fs, RNG: sim.NewRNG(rngSeed), Content: content})
	if err != nil {
		t.Fatal(err)
	}
	return eng, replicaParts{dev: dev, fs: fs, cfg: cfg}
}

// replicatedFactory adapts a sharded store whose shards are replica
// groups to the engine-conformance suite: the full behavioural contract
// of a single engine must survive sharding AND replication, including
// recovery that restarts every replica of every shard.
func replicatedFactory(engName string, shards, replicas int, mode replica.Mode, tunables map[string]string) kvtest.Factory {
	return func(t *testing.T, content bool) *kvtest.Stack {
		drv, err := engine.Lookup(engName)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([][]replicaParts, shards)
		st, err := store.New(shards, func(i int) (store.Stack, error) {
			parts[i] = make([]replicaParts, replicas)
			members := make([]replica.Member, replicas)
			devs := make([]blockdev.Host, replicas)
			for r := 0; r < replicas; r++ {
				eng, p := openReplicaStack(t, drv, content, tunables, uint64(100+i*8+r))
				parts[i][r] = p
				members[r] = replica.Member{Engine: eng}
				devs[r] = p.dev
			}
			g, err := replica.New(mode, members)
			if err != nil {
				return store.Stack{}, err
			}
			return store.Stack{Engine: g, Dev: devs[0], Devs: devs}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		return &kvtest.Stack{
			Engine: &store.Sync{S: st},
			Dev:    parts[0][0].dev,
			Reopen: func(now sim.Duration) (kvtest.Engine, sim.Duration, error) {
				st.Close()
				groups := make([]*replica.Group, shards)
				starts := make([]sim.Duration, shards)
				var end sim.Duration
				for i := range parts {
					members := make([]replica.Member, replicas)
					for r := range parts[i] {
						re, rnow, err := parts[i][r].cfg.Recover(engine.Env{
							FS:      parts[i][r].fs,
							RNG:     sim.NewRNG(uint64(200 + i*8 + r)),
							Content: content,
						}, now)
						if err != nil {
							return nil, rnow, err
						}
						members[r] = replica.Member{Engine: re, Start: rnow}
						if rnow > starts[i] {
							starts[i] = rnow
						}
					}
					g, err := replica.New(mode, members)
					if err != nil {
						return nil, 0, err
					}
					groups[i] = g
					if starts[i] > end {
						end = starts[i]
					}
				}
				rst, err := store.New(shards, func(i int) (store.Stack, error) {
					devs := make([]blockdev.Host, replicas)
					for r := range parts[i] {
						devs[r] = parts[i][r].dev
					}
					return store.Stack{Engine: groups[i], Dev: devs[0], Devs: devs, Start: starts[i]}, nil
				})
				if err != nil {
					return nil, 0, err
				}
				t.Cleanup(rst.Close)
				return &store.Sync{S: rst}, end, nil
			},
		}
	}
}

// TestReplicatedConformance holds the replicated store facade to the
// exact behavioural contract of a single engine at R=2 and R=3 over
// all three engines, covering both replication modes.
func TestReplicatedConformance(t *testing.T) {
	cases := []struct {
		eng      string
		replicas int
		mode     replica.Mode
	}{
		{"lsm", 2, replica.Chain},
		{"lsm", 3, replica.Quorum},
		{"btree", 2, replica.Quorum},
		{"btree", 3, replica.Chain},
		{"betree", 2, replica.Chain},
		{"betree", 3, replica.Quorum},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s-r%d-%s", tc.eng, tc.replicas, tc.mode)
		t.Run(name, func(t *testing.T) {
			kvtest.Run(t, replicatedFactory(tc.eng, 2, tc.replicas, tc.mode, durability(tc.eng)))
		})
	}
}

// TestSingleReplicaRestart is the recovery-by-restart path of one
// replica while the rest of the group keeps serving: kill one replica
// after a clean shutdown, keep writing degraded, recover it from its
// own on-device state, revive and reconcile — every replica must end
// byte-comparable and the group must serve the exact final state.
func TestSingleReplicaRestart(t *testing.T) {
	const replicas = 3
	for _, eng := range []string{"lsm", "btree", "betree"} {
		for _, mode := range []replica.Mode{replica.Chain, replica.Quorum} {
			t.Run(fmt.Sprintf("%s-%s", eng, mode), func(t *testing.T) {
				drv, err := engine.Lookup(eng)
				if err != nil {
					t.Fatal(err)
				}
				parts := make([]replicaParts, replicas)
				members := make([]replica.Member, replicas)
				for r := 0; r < replicas; r++ {
					e, p := openReplicaStack(t, drv, true, durability(eng), uint64(300+r))
					parts[r] = p
					members[r] = replica.Member{Engine: e}
				}
				g, err := replica.New(mode, members)
				if err != nil {
					t.Fatal(err)
				}
				want := map[uint64]string{}
				var now sim.Duration
				put := func(id uint64, val string) {
					t.Helper()
					now, err = g.Put(now, kv.EncodeKey(id), []byte(val), 0)
					if err != nil {
						t.Fatalf("Put(%d): %v", id, err)
					}
					want[id] = val
				}
				del := func(id uint64) {
					t.Helper()
					now, err = g.Delete(now, kv.EncodeKey(id))
					if err != nil {
						t.Fatalf("Delete(%d): %v", id, err)
					}
					delete(want, id)
				}
				for id := uint64(0); id < 200; id++ {
					put(id, fmt.Sprintf("v%d", id))
				}
				// Clean shutdown of replica 1, then the group degrades.
				victim := g.Engine(1)
				if err := g.Kill(1); err != nil {
					t.Fatal(err)
				}
				if _, err := victim.Close(now); err != nil {
					t.Fatalf("closing the victim: %v", err)
				}
				// Degraded traffic the victim misses entirely.
				for id := uint64(0); id < 50; id++ {
					put(id, fmt.Sprintf("gen2-%d", id))
				}
				for id := uint64(100); id < 120; id++ {
					del(id)
				}
				for id := uint64(500); id < 520; id++ {
					put(id, fmt.Sprintf("new%d", id))
				}
				// Restart: recover the victim from its own device state.
				re, rnow, err := parts[1].cfg.Recover(engine.Env{
					FS:      parts[1].fs,
					RNG:     sim.NewRNG(777),
					Content: true,
				}, now)
				if err != nil {
					t.Fatalf("Recover: %v", err)
				}
				if err := g.Revive(1, replica.Member{Engine: re, Start: rnow}); err != nil {
					t.Fatal(err)
				}
				if now, err = g.Reconcile(maxDur(now, rnow)); err != nil {
					t.Fatalf("Reconcile: %v", err)
				}
				// The group serves the exact final state.
				for id, val := range want {
					_, v, found, err := g.Get(now, kv.EncodeKey(id))
					if err != nil || !found || string(v) != val {
						t.Fatalf("Get(%d) = %q, %v, %v; want %q", id, v, found, err, val)
					}
				}
				for id := uint64(100); id < 120; id++ {
					_, _, found, err := g.Get(now, kv.EncodeKey(id))
					if err != nil || found {
						t.Fatalf("deleted key %d resurfaced (found=%v, err=%v)", id, found, err)
					}
				}
				// Every replica is byte-comparable to replica 0.
				ref := scanAll(t, g, 0, now)
				if len(ref) != len(want) {
					t.Fatalf("replica 0 holds %d keys, want %d", len(ref), len(want))
				}
				for r := 1; r < replicas; r++ {
					got := scanAll(t, g, r, now)
					if len(got) != len(ref) {
						t.Fatalf("replica %d holds %d keys, replica 0 holds %d", r, len(got), len(ref))
					}
					for i := range ref {
						if !bytes.Equal(ref[i].Key, got[i].Key) || !bytes.Equal(ref[i].Value, got[i].Value) {
							t.Fatalf("replica %d diverges at entry %d after reconcile", r, i)
						}
					}
				}
			})
		}
	}
}

// scanAll pages one replica's full key space directly off its engine.
func scanAll(t *testing.T, g *replica.Group, r int, now sim.Duration) []kv.Entry {
	t.Helper()
	sc, ok := g.Engine(r).(interface {
		Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error)
	})
	if !ok {
		t.Fatalf("replica %d engine has no Scan", r)
	}
	var (
		out   []kv.Entry
		start = make([]byte, kv.KeySize)
	)
	for {
		_, ents, err := sc.Scan(now, start, 128)
		if err != nil {
			t.Fatalf("scan replica %d: %v", r, err)
		}
		for _, e := range ents {
			out = append(out, kv.Entry{
				Key:      append([]byte(nil), e.Key...),
				Value:    append([]byte(nil), e.Value...),
				ValueLen: e.ValueLen,
			})
		}
		if len(ents) < 128 {
			return out
		}
		last := ents[len(ents)-1].Key
		start = append(append(start[:0], last...), 0)
		id, err := kv.DecodeKey(last)
		if err == nil {
			start = kv.EncodeKey(id + 1)
		}
	}
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
