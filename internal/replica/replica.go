// Package replica turns one store shard into a replica group of R
// complete engine stacks — each replica owns a private device,
// filesystem and engine — behind the same engine-shaped surface the
// serving layer (internal/store) already drives. Two seed-deterministic
// replication modes are supported:
//
//   - Chain: writes flow head→tail through the live replicas in index
//     order and acknowledge when the tail finishes (the write is then
//     on every live replica); reads are served at the tail.
//   - Quorum: writes go to every live replica and acknowledge at the
//     ⌈R/2⌉+1-th completion (majority of the CONFIGURED replica count,
//     so a write never acks on a minority after failures); reads are
//     served at the first consistent replica with read-repair applied
//     to any live replica that diverges.
//
// Every live replica applies every write synchronously in virtual
// time — the mode only decides which completion time acknowledges the
// operation — so live, caught-up replicas are logically identical at
// all times. Divergence enters only through failures: Kill removes a
// replica from the group, Revive re-attaches a recovered engine in a
// stale state (it may have lost unsynced tail writes and missed
// everything while down), and Reconcile repairs stale replicas from a
// caught-up authority by a paged merge-diff of full scans, after which
// the group is byte-comparable replica to replica.
//
// The group reports LOGICAL engine statistics — one Put is one Put no
// matter how many replicas applied it — by accounting exactly one
// replica's stats delta per operation, so throughput and WA-A keep the
// paper's definitions while the R× device traffic stays visible in the
// per-device block counters. Everything is deterministic: replicas are
// visited in index order, no map iteration, no wall clock.
package replica

import (
	"bytes"
	"fmt"
	"sort"

	"ptsbench/internal/engine"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// Mode selects the replication discipline.
type Mode uint8

// Replication modes.
const (
	// Chain: writes head→tail, ack at the tail, reads at the tail.
	Chain Mode = iota
	// Quorum: writes everywhere, ack at majority, reads with
	// read-repair.
	Quorum
)

// String implements fmt.Stringer with the spec-file spelling.
func (m Mode) String() string {
	if m == Quorum {
		return "quorum"
	}
	return "chain"
}

// ParseMode maps a spec-file mode name to its Mode. The empty string is
// the default (chain), matching core.Spec.Validate.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "chain":
		return Chain, nil
	case "quorum":
		return Quorum, nil
	default:
		return 0, fmt.Errorf("replica: unknown mode %q (have chain, quorum)", s)
	}
}

// MemberError attributes a failure inside the group to the replica
// whose engine raised it. The serving layer's failover path unwraps it
// (via the structural MemberIndex surface) to decide WHICH replica to
// fail out of the group; errors.Is/As reach the underlying engine or
// device error through Unwrap, so transient-vs-persistent
// classification (deverr) still works through the wrapper.
type MemberError struct {
	Member int
	Err    error
}

// Error implements error.
func (e *MemberError) Error() string {
	return fmt.Sprintf("replica %d: %v", e.Member, e.Err)
}

// Unwrap exposes the member engine's error to errors.Is/As.
func (e *MemberError) Unwrap() error { return e.Err }

// MemberIndex returns the failing replica's index — the structural
// surface the store's failover path matches via errors.As, so it never
// has to import this package.
func (e *MemberError) MemberIndex() int { return e.Member }

// memberErr wraps a member-engine failure with its replica index; nil
// stays nil.
func memberErr(i int, err error) error {
	if err == nil {
		return nil
	}
	return &MemberError{Member: i, Err: err}
}

// deleter and scanner mirror the store's optional engine surfaces; all
// built-in engines implement both.
type deleter interface {
	Delete(now sim.Duration, key []byte) (sim.Duration, error)
}

type scanner interface {
	Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error)
}

// Member is one replica's engine at construction or revival time. Start
// seeds the replica's clock (recovery end time for recovered engines).
type Member struct {
	Engine engine.Engine
	Start  sim.Duration
}

// rep is one replica's runtime state. Each replica keeps its own
// monotonic virtual clock: operations start at max(group time, replica
// clock), so a replica's engine never sees time run backwards even when
// the group serves reads and writes at different replicas.
type rep struct {
	eng   engine.Engine
	clock sim.Duration
	live  bool
	stale bool // revived but not yet reconciled; never serves reads
}

// Group is a replica group behind the engine surface. It implements
// engine.Engine plus the store's optional Deleter/Scanner surfaces and
// engine.GroupCommitter, so a store.Stack can carry a Group wherever it
// carried a bare engine.
type Group struct {
	mode  Mode
	reps  []rep
	stats kv.EngineStats // logical (one delta per op), not summed
	dones []sim.Duration // scratch for quorum ack sorting
}

// New builds a replica group over the members in replica-index order.
// Replica 0 is the chain head; the last member is the chain tail.
func New(mode Mode, members []Member) (*Group, error) {
	if len(members) < 1 {
		return nil, fmt.Errorf("replica: a group needs at least 1 member (got %d)", len(members))
	}
	if mode != Chain && mode != Quorum {
		return nil, fmt.Errorf("replica: unknown mode %d", mode)
	}
	g := &Group{mode: mode, dones: make([]sim.Duration, 0, len(members))}
	for _, m := range members {
		if m.Engine == nil {
			return nil, fmt.Errorf("replica: nil engine in member list")
		}
		g.reps = append(g.reps, rep{eng: m.Engine, clock: m.Start, live: true})
	}
	return g, nil
}

// Mode returns the group's replication mode.
func (g *Group) Mode() Mode { return g.mode }

// Replicas returns the configured replica count (live or not).
func (g *Group) Replicas() int { return len(g.reps) }

// Alive reports whether replica i is live.
func (g *Group) Alive(i int) bool { return g.reps[i].live }

// Stale reports whether replica i is revived but not yet reconciled.
func (g *Group) Stale(i int) bool { return g.reps[i].stale }

// Engine returns replica i's engine (tests and harnesses inspect
// replicas directly; the serving path never needs it).
func (g *Group) Engine(i int) engine.Engine { return g.reps[i].eng }

// Clock returns replica i's virtual clock.
func (g *Group) Clock(i int) sim.Duration { return g.reps[i].clock }

// majority is the write-acknowledgement quorum: ⌈R/2⌉+1 over the
// CONFIGURED replica count — a constant, so a write can never ack on a
// shrinking minority as replicas die.
func (g *Group) majority() int { return len(g.reps)/2 + 1 }

// Live returns the number of live replicas — the store's failover path
// reads it (with MinLive) to decide whether the group can afford to
// lose another member.
func (g *Group) Live() int { return g.liveCount() }

// MinLive returns the fewest live replicas at which the group still
// serves: a chain degrades all the way down to one replica, a quorum
// needs its configured write majority.
func (g *Group) MinLive() int {
	if g.mode == Quorum {
		return g.majority()
	}
	return 1
}

// liveCount counts live replicas.
func (g *Group) liveCount() int {
	n := 0
	for i := range g.reps {
		if g.reps[i].live {
			n++
		}
	}
	return n
}

// serveIdx picks the replica that serves reads and scans: the chain
// tail (last live, caught-up replica) or the quorum's first consistent
// replica. Stale replicas never serve. Returns -1 when no consistent
// replica is live.
func (g *Group) serveIdx() int {
	if g.mode == Chain {
		for i := len(g.reps) - 1; i >= 0; i-- {
			if g.reps[i].live && !g.reps[i].stale {
				return i
			}
		}
		return -1
	}
	for i := range g.reps {
		if g.reps[i].live && !g.reps[i].stale {
			return i
		}
	}
	return -1
}

// write runs one mutation through the group under the mode's ack rule.
// apply performs the operation on one replica's engine at the given
// start time. The returned time is the replication commit point.
func (g *Group) write(now sim.Duration, apply func(e engine.Engine, at sim.Duration) (sim.Duration, error)) (sim.Duration, error) {
	acct := -1 // first live replica accounts the op's logical stats
	var before kv.EngineStats
	if g.mode == Chain {
		t := now
		for i := range g.reps {
			r := &g.reps[i]
			if !r.live {
				continue
			}
			if acct < 0 {
				acct = i
				before = r.eng.Stats()
			}
			done, err := apply(r.eng, maxDur(r.clock, t))
			r.clock = done
			if err != nil {
				return done, memberErr(i, err)
			}
			t = done // the chain forwards after the local apply
		}
		if acct < 0 {
			return now, fmt.Errorf("replica: no live replica")
		}
		g.stats = g.stats.Add(g.reps[acct].eng.Stats().Sub(before))
		return t, nil
	}
	// Quorum: every live replica applies at its own clock; the op acks
	// at the majority-th smallest completion.
	need := g.majority()
	if live := g.liveCount(); live < need {
		return now, fmt.Errorf("replica: quorum lost: %d of %d replicas live (writes need %d)", live, len(g.reps), need)
	}
	g.dones = g.dones[:0]
	for i := range g.reps {
		r := &g.reps[i]
		if !r.live {
			continue
		}
		if acct < 0 {
			acct = i
			before = r.eng.Stats()
		}
		done, err := apply(r.eng, maxDur(r.clock, now))
		r.clock = done
		if err != nil {
			return done, memberErr(i, err)
		}
		g.dones = append(g.dones, done)
	}
	g.stats = g.stats.Add(g.reps[acct].eng.Stats().Sub(before))
	return kth(g.dones, need), nil
}

// kth returns the k-th smallest duration (1-based) of ds, which always
// holds at least k entries by the quorum precondition.
func kth(ds []sim.Duration, k int) sim.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[k-1]
}

// Put implements kv.Engine: the write replicates under the group's ack
// rule and the returned time is the replication commit point.
func (g *Group) Put(now sim.Duration, key, value []byte, valueLen int) (sim.Duration, error) {
	return g.write(now, func(e engine.Engine, at sim.Duration) (sim.Duration, error) {
		return e.Put(at, key, value, valueLen)
	})
}

// Delete implements the store's Deleter surface, replicating like Put.
func (g *Group) Delete(now sim.Duration, key []byte) (sim.Duration, error) {
	return g.write(now, func(e engine.Engine, at sim.Duration) (sim.Duration, error) {
		del, ok := e.(deleter)
		if !ok {
			return at, fmt.Errorf("replica: engine does not support Delete")
		}
		return del.Delete(at, key)
	})
}

// Get implements kv.Engine. Chain serves at the tail. Quorum reads
// every live replica — the read needs a majority up, like the write
// path — takes the first consistent replica's answer and repairs any
// live replica that diverges from it (a revived replica serving before
// Reconcile caught it up).
func (g *Group) Get(now sim.Duration, key []byte) (sim.Duration, []byte, bool, error) {
	srv := g.serveIdx()
	if srv < 0 {
		return now, nil, false, fmt.Errorf("replica: no consistent replica live")
	}
	if g.mode == Chain {
		r := &g.reps[srv]
		before := r.eng.Stats()
		done, v, found, err := r.eng.Get(maxDur(r.clock, now), key)
		r.clock = done
		if err != nil {
			return done, nil, false, memberErr(srv, err)
		}
		g.stats = g.stats.Add(r.eng.Stats().Sub(before))
		return done, v, found, nil
	}
	need := g.majority()
	if live := g.liveCount(); live < need {
		return now, nil, false, fmt.Errorf("replica: quorum lost: %d of %d replicas live (reads need %d)", live, len(g.reps), need)
	}
	var (
		winVal   []byte
		winFound bool
		vals     = make([][]byte, len(g.reps))
		founds   = make([]bool, len(g.reps))
		before   = g.reps[srv].eng.Stats()
	)
	g.dones = g.dones[:0]
	for i := range g.reps {
		r := &g.reps[i]
		if !r.live {
			continue
		}
		done, v, found, err := r.eng.Get(maxDur(r.clock, now), key)
		r.clock = done
		if err != nil {
			return done, nil, false, memberErr(i, err)
		}
		g.dones = append(g.dones, done)
		vals[i], founds[i] = v, found
		if i == srv {
			winVal, winFound = v, found
		}
	}
	// Read-repair: re-write the winner onto any live replica that
	// returned something else. Repairs go straight to the replica's
	// engine — they are replication traffic, not user operations, so
	// they stay out of the logical stats.
	for i := range g.reps {
		r := &g.reps[i]
		if !r.live || i == srv {
			continue
		}
		if founds[i] == winFound && bytes.Equal(vals[i], winVal) {
			continue
		}
		if err := g.repair(r, key, winVal, winFound, 0); err != nil {
			return r.clock, nil, false, memberErr(i, err)
		}
	}
	g.stats = g.stats.Add(g.reps[srv].eng.Stats().Sub(before))
	return kth(g.dones, need), winVal, winFound, nil
}

// repair overwrites one replica's state for key with the
// authoritative (value, found) pair. valueLen carries the accounted
// size when the authoritative value is accounting-mode nil; a present
// key with a nil value and zero length cannot be reconstructed and is
// skipped (accounting-mode groups reconverge through Reconcile's
// entry-level lengths instead).
func (g *Group) repair(r *rep, key, val []byte, found bool, valueLen int) error {
	var err error
	if !found {
		del, ok := r.eng.(deleter)
		if !ok {
			return fmt.Errorf("replica: engine does not support Delete")
		}
		r.clock, err = del.Delete(r.clock, key)
		return err
	}
	if val == nil && valueLen == 0 {
		return nil
	}
	r.clock, err = r.eng.Put(r.clock, key, val, valueLen)
	return err
}

// Scan implements the store's Scanner surface at the group's consistent
// serving replica, so a cross-shard merge scan reads one coherent
// replica per group.
func (g *Group) Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error) {
	srv := g.serveIdx()
	if srv < 0 {
		return now, nil, fmt.Errorf("replica: no consistent replica live")
	}
	r := &g.reps[srv]
	sc, ok := r.eng.(scanner)
	if !ok {
		return now, nil, fmt.Errorf("replica: engine does not support Scan")
	}
	before := r.eng.Stats()
	done, ents, err := sc.Scan(maxDur(r.clock, now), start, limit)
	r.clock = done
	if err != nil {
		return done, nil, memberErr(srv, err)
	}
	g.stats = g.stats.Add(r.eng.Stats().Sub(before))
	return done, ents, nil
}

// FlushAll flushes every live replica and returns when the slowest
// finished.
func (g *Group) FlushAll(now sim.Duration) (sim.Duration, error) {
	end := now
	var firstErr error
	for i := range g.reps {
		r := &g.reps[i]
		if !r.live {
			continue
		}
		done, err := r.eng.FlushAll(maxDur(r.clock, now))
		r.clock = done
		if err != nil && firstErr == nil {
			firstErr = memberErr(i, err)
		}
		if done > end {
			end = done
		}
	}
	return end, firstErr
}

// Quiesce drains background work on every live replica.
func (g *Group) Quiesce(now sim.Duration) sim.Duration {
	end := now
	for i := range g.reps {
		r := &g.reps[i]
		if !r.live {
			continue
		}
		r.clock = r.eng.Quiesce(maxDur(r.clock, now))
		if r.clock > end {
			end = r.clock
		}
	}
	return end
}

// Close shuts every live replica down.
func (g *Group) Close(now sim.Duration) (sim.Duration, error) {
	end := now
	var firstErr error
	for i := range g.reps {
		r := &g.reps[i]
		if !r.live {
			continue
		}
		done, err := r.eng.Close(maxDur(r.clock, now))
		r.clock = done
		if err != nil && firstErr == nil {
			firstErr = memberErr(i, err)
		}
		if done > end {
			end = done
		}
	}
	return end, firstErr
}

// Stats returns the group's LOGICAL counters: exactly one replica's
// stats delta was accumulated per user operation, so one replicated Put
// counts once — the R× physical write traffic shows up in the
// per-device block counters, where write amplification is measured.
func (g *Group) Stats() kv.EngineStats { return g.stats }

// DiskUsageBytes sums the live replicas' footprints: replication
// honestly multiplies space, and the space-amplification figures must
// say so.
func (g *Group) DiskUsageBytes() int64 {
	var t int64
	for i := range g.reps {
		if g.reps[i].live {
			t += g.reps[i].eng.DiskUsageBytes()
		}
	}
	return t
}

// BeginGroupCommit implements engine.GroupCommitter by bracketing every
// live replica that supports it (groups are homogeneous, so it is all
// or none in practice).
func (g *Group) BeginGroupCommit() {
	for i := range g.reps {
		if !g.reps[i].live {
			continue
		}
		if gc, ok := g.reps[i].eng.(engine.GroupCommitter); ok {
			gc.BeginGroupCommit()
		}
	}
}

// EndGroupCommit closes the group commit on every live replica and
// returns the replication commit point of the shared sync: the tail's
// sync for chain, the majority-th for quorum. When no replica supports
// group commit it returns 0, which callers treat as "no shared sync
// happened" (the store only lifts completion times forward).
func (g *Group) EndGroupCommit(now sim.Duration) (sim.Duration, error) {
	g.dones = g.dones[:0]
	var firstErr error
	supported := false
	for i := range g.reps {
		r := &g.reps[i]
		if !r.live {
			continue
		}
		gc, ok := r.eng.(engine.GroupCommitter)
		if !ok {
			continue
		}
		supported = true
		done, err := gc.EndGroupCommit(maxDur(r.clock, now))
		if err != nil && firstErr == nil {
			firstErr = memberErr(i, err)
		}
		if done > r.clock {
			r.clock = done
		}
		g.dones = append(g.dones, done)
	}
	if !supported || firstErr != nil {
		return 0, firstErr
	}
	if g.mode == Chain {
		return g.dones[len(g.dones)-1], nil
	}
	need := g.majority()
	if len(g.dones) < need {
		return 0, fmt.Errorf("replica: quorum lost: %d of %d replicas live (sync needs %d)", len(g.dones), len(g.reps), need)
	}
	return kth(g.dones, need), nil
}

// Kill removes replica i from the group: its device died (the crash
// harness cuts its fault wrapper) and no operation routes to it until
// Revive. Killing the last live replica is allowed — the group then
// fails every operation, which is the honest outcome.
func (g *Group) Kill(i int) error {
	if i < 0 || i >= len(g.reps) {
		return fmt.Errorf("replica: kill index %d out of range (replicas %d)", i, len(g.reps))
	}
	if !g.reps[i].live {
		return fmt.Errorf("replica: replica %d is already dead", i)
	}
	g.reps[i].live = false
	g.reps[i].stale = false
	return nil
}

// Revive re-attaches a recovered engine as replica i. The replica comes
// back STALE: it receives every new write but never serves reads until
// Reconcile has repaired whatever it lost while down.
func (g *Group) Revive(i int, m Member) error {
	if i < 0 || i >= len(g.reps) {
		return fmt.Errorf("replica: revive index %d out of range (replicas %d)", i, len(g.reps))
	}
	if g.reps[i].live {
		return fmt.Errorf("replica: replica %d is already live", i)
	}
	if m.Engine == nil {
		return fmt.Errorf("replica: revive with nil engine")
	}
	g.reps[i] = rep{eng: m.Engine, clock: m.Start, live: true, stale: true}
	return nil
}

// reconcilePage is the scan window of Reconcile's merge-diff.
const reconcilePage = 128

// Reconcile repairs every stale replica from the group's consistent
// authority (the serving replica) by a paged merge-diff over full
// scans: keys missing or different on the stale replica are re-written
// from the authority, keys the authority no longer holds are deleted.
// Afterwards every live replica is byte-comparable and stale replicas
// rejoin the serving rotation. Returns the virtual time the slowest
// repaired replica finished.
func (g *Group) Reconcile(now sim.Duration) (sim.Duration, error) {
	auth := g.serveIdx()
	if auth < 0 {
		return now, fmt.Errorf("replica: no consistent replica live to reconcile from")
	}
	end := now
	for i := range g.reps {
		r := &g.reps[i]
		if !r.live || !r.stale {
			continue
		}
		if err := g.reconcileOne(&g.reps[auth], r, now); err != nil {
			return r.clock, fmt.Errorf("replica: reconciling replica %d: %w", i, err)
		}
		r.stale = false
		if r.clock > end {
			end = r.clock
		}
	}
	if g.reps[auth].clock > end {
		end = g.reps[auth].clock
	}
	return end, nil
}

// pager pages one engine's key space in scan order.
type pager struct {
	eng   engine.Engine
	clock *sim.Duration
	buf   []kv.Entry
	idx   int
	next  []byte // continuation key for the next page
	done  bool
}

func newPager(r *rep, start []byte) (*pager, error) {
	if _, ok := r.eng.(scanner); !ok {
		return nil, fmt.Errorf("replica: engine does not support Scan")
	}
	p := &pager{eng: r.eng, clock: &r.clock, next: append([]byte(nil), start...)}
	return p, nil
}

// peek returns the current entry without consuming it; ok is false at
// the end of the key space.
func (p *pager) peek(now sim.Duration) (*kv.Entry, bool, error) {
	for p.idx >= len(p.buf) {
		if p.done {
			return nil, false, nil
		}
		sc := p.eng.(scanner)
		done, ents, err := sc.Scan(maxDur(*p.clock, now), p.next, reconcilePage)
		*p.clock = done
		if err != nil {
			return nil, false, err
		}
		p.buf, p.idx = ents, 0
		if len(ents) < reconcilePage {
			p.done = true
		} else {
			p.next = nextKey(ents[len(ents)-1].Key)
		}
	}
	return &p.buf[p.idx], true, nil
}

func (p *pager) advance() { p.idx++ }

// nextKey returns the smallest key strictly greater than k (big-endian
// increment with carry; an all-0xFF key appends a zero byte).
func nextKey(k []byte) []byte {
	n := append([]byte(nil), k...)
	for i := len(n) - 1; i >= 0; i-- {
		n[i]++
		if n[i] != 0 {
			return n
		}
	}
	return append(n, 0)
}

// reconcileOne merge-diffs the authority against one stale replica and
// applies the fixes to the replica's engine.
func (g *Group) reconcileOne(auth, stale *rep, now sim.Duration) error {
	start := make([]byte, kv.KeySize) // all zeros: the smallest canonical key
	ap, err := newPager(auth, start)
	if err != nil {
		return err
	}
	sp, err := newPager(stale, start)
	if err != nil {
		return err
	}
	for {
		ae, aok, err := ap.peek(now)
		if err != nil {
			return err
		}
		se, sok, err := sp.peek(now)
		if err != nil {
			return err
		}
		switch {
		case !aok && !sok:
			return nil
		case aok && (!sok || kv.CompareKeys(ae.Key, se.Key) < 0):
			// Missing on the stale replica: re-write from the authority.
			if err := g.repair(stale, ae.Key, ae.Value, true, ae.ValueLen); err != nil {
				return err
			}
			ap.advance()
		case sok && (!aok || kv.CompareKeys(se.Key, ae.Key) < 0):
			// The authority no longer holds it: delete.
			if err := g.repair(stale, se.Key, nil, false, 0); err != nil {
				return err
			}
			sp.advance()
		default: // same key on both
			if !bytes.Equal(ae.Value, se.Value) || ae.ValueLen != se.ValueLen {
				if err := g.repair(stale, ae.Key, ae.Value, true, ae.ValueLen); err != nil {
					return err
				}
			}
			ap.advance()
			sp.advance()
		}
	}
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
