package replica

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"ptsbench/internal/engine"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// stubEngine is a deterministic in-memory engine with a fixed per-op
// latency, so the replication ack arithmetic can be asserted exactly.
type stubEngine struct {
	lat    sim.Duration
	m      map[string][]byte
	stats  kv.EngineStats
	gcOpen int
	gcEnds int
	failed error
}

func newStub(lat sim.Duration) *stubEngine {
	return &stubEngine{lat: lat, m: map[string][]byte{}}
}

func (s *stubEngine) Put(now sim.Duration, key, value []byte, valueLen int) (sim.Duration, error) {
	if s.failed != nil {
		return now, s.failed
	}
	s.stats.Puts++
	s.stats.UserBytesWritten += int64(len(key) + len(value))
	s.m[string(key)] = append([]byte(nil), value...)
	return now + s.lat, nil
}

func (s *stubEngine) Get(now sim.Duration, key []byte) (sim.Duration, []byte, bool, error) {
	if s.failed != nil {
		return now, nil, false, s.failed
	}
	s.stats.Gets++
	v, ok := s.m[string(key)]
	if !ok {
		return now + s.lat, nil, false, nil
	}
	s.stats.UserBytesRead += int64(len(key) + len(v))
	return now + s.lat, append([]byte(nil), v...), true, nil
}

func (s *stubEngine) Delete(now sim.Duration, key []byte) (sim.Duration, error) {
	if s.failed != nil {
		return now, s.failed
	}
	delete(s.m, string(key))
	return now + s.lat, nil
}

func (s *stubEngine) Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error) {
	if s.failed != nil {
		return now, nil, s.failed
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		if bytes.Compare([]byte(k), start) >= 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	ents := make([]kv.Entry, 0, len(keys))
	for _, k := range keys {
		v := s.m[k]
		ents = append(ents, kv.Entry{
			Key:      []byte(k),
			Value:    append([]byte(nil), v...),
			ValueLen: len(v),
		})
	}
	return now + s.lat, ents, nil
}

func (s *stubEngine) FlushAll(now sim.Duration) (sim.Duration, error) { return now + s.lat, nil }
func (s *stubEngine) Quiesce(now sim.Duration) sim.Duration           { return now }
func (s *stubEngine) Close(now sim.Duration) (sim.Duration, error)    { return now, nil }
func (s *stubEngine) Stats() kv.EngineStats                           { return s.stats }

func (s *stubEngine) DiskUsageBytes() int64 {
	var t int64
	for k, v := range s.m {
		t += int64(len(k) + len(v))
	}
	return t
}

func (s *stubEngine) BeginGroupCommit() { s.gcOpen++ }

func (s *stubEngine) EndGroupCommit(now sim.Duration) (sim.Duration, error) {
	s.gcOpen--
	s.gcEnds++
	return now + s.lat, nil
}

var (
	_ engine.Engine         = (*stubEngine)(nil)
	_ engine.GroupCommitter = (*stubEngine)(nil)
)

func mustGroup(t *testing.T, mode Mode, lats ...sim.Duration) (*Group, []*stubEngine) {
	t.Helper()
	stubs := make([]*stubEngine, len(lats))
	members := make([]Member, len(lats))
	for i, lat := range lats {
		stubs[i] = newStub(lat)
		members[i] = Member{Engine: stubs[i]}
	}
	g, err := New(mode, members)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g, stubs
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"": Chain, "chain": Chain, "quorum": Quorum} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("paxos"); err == nil {
		t.Errorf("ParseMode(paxos): want error")
	}
	if Chain.String() != "chain" || Quorum.String() != "quorum" {
		t.Errorf("mode String: got %q, %q", Chain.String(), Quorum.String())
	}
}

func TestChainPutAckAtTail(t *testing.T) {
	g, stubs := mustGroup(t, Chain, 10, 20, 30)
	done, err := g.Put(0, kv.EncodeKey(1), []byte("v"), 0)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Head: 0→10; middle starts when the head is done: 10→30; tail: 30→60.
	if done != 60 {
		t.Errorf("chain ack = %v, want 60", done)
	}
	for i, want := range []sim.Duration{10, 30, 60} {
		if g.Clock(i) != want {
			t.Errorf("replica %d clock = %v, want %v", i, g.Clock(i), want)
		}
	}
	for i, s := range stubs {
		if _, ok := s.m[string(kv.EncodeKey(1))]; !ok {
			t.Errorf("replica %d missing the write", i)
		}
	}
}

func TestQuorumPutAckAtMajority(t *testing.T) {
	g, _ := mustGroup(t, Quorum, 10, 20, 30)
	done, err := g.Put(0, kv.EncodeKey(1), []byte("v"), 0)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Replicas finish at 10, 20, 30 in parallel; majority of 3 is 2, so
	// the write acks at the second completion.
	if done != 20 {
		t.Errorf("quorum ack = %v, want 20", done)
	}
}

func TestQuorumLosesWritesBelowMajority(t *testing.T) {
	g, _ := mustGroup(t, Quorum, 10, 10, 10)
	if err := g.Kill(0); err != nil {
		t.Fatalf("Kill(0): %v", err)
	}
	if _, err := g.Put(0, kv.EncodeKey(1), []byte("v"), 0); err != nil {
		t.Fatalf("Put with 2/3 live: %v", err)
	}
	if err := g.Kill(1); err != nil {
		t.Fatalf("Kill(1): %v", err)
	}
	if _, err := g.Put(0, kv.EncodeKey(2), []byte("v"), 0); err == nil {
		t.Errorf("Put with 1/3 live: want quorum-lost error")
	}
	if _, _, _, err := g.Get(0, kv.EncodeKey(1)); err == nil {
		t.Errorf("Get with 1/3 live: want quorum-lost error")
	}
}

func TestChainServesAtTail(t *testing.T) {
	g, stubs := mustGroup(t, Chain, 10, 10, 10)
	key := kv.EncodeKey(7)
	if _, err := g.Put(0, key, []byte("good"), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Corrupt everything but the tail: a chain read must not see it.
	stubs[0].m[string(key)] = []byte("BAD")
	stubs[1].m[string(key)] = []byte("BAD")
	_, v, found, err := g.Get(100, key)
	if err != nil || !found || string(v) != "good" {
		t.Errorf("chain Get = %q, %v, %v; want tail's value", v, found, err)
	}
	// Kill the tail: the chain serves at the new last live replica.
	if err := g.Kill(2); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	_, v, _, err = g.Get(200, key)
	if err != nil || string(v) != "BAD" {
		t.Errorf("degraded chain Get = %q, %v; want replica 1's value", v, err)
	}
}

func TestQuorumReadRepair(t *testing.T) {
	g, stubs := mustGroup(t, Quorum, 10, 10, 10)
	key := kv.EncodeKey(9)
	if _, err := g.Put(0, key, []byte("good"), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Diverge replica 2 behind the group's back (a revived replica that
	// lost this write while down).
	stubs[2].m[string(key)] = []byte("stale")
	_, v, found, err := g.Get(100, key)
	if err != nil || !found || string(v) != "good" {
		t.Fatalf("Get = %q, %v, %v; want the consistent value", v, found, err)
	}
	if got := string(stubs[2].m[string(key)]); got != "good" {
		t.Errorf("read-repair left replica 2 at %q, want \"good\"", got)
	}
	// A key the authority does not hold is deleted from divergents.
	key2 := kv.EncodeKey(10)
	stubs[1].m[string(key2)] = []byte("ghost")
	_, _, found, err = g.Get(200, key2)
	if err != nil || found {
		t.Fatalf("Get(ghost) = %v, %v; want absent", found, err)
	}
	if _, ok := stubs[1].m[string(key2)]; ok {
		t.Errorf("read-repair left the ghost key on replica 1")
	}
}

func TestLogicalStats(t *testing.T) {
	for _, mode := range []Mode{Chain, Quorum} {
		g, _ := mustGroup(t, mode, 10, 10, 10)
		key := kv.EncodeKey(1)
		if _, err := g.Put(0, key, []byte("hello"), 0); err != nil {
			t.Fatalf("%v Put: %v", mode, err)
		}
		if _, _, _, err := g.Get(20, key); err != nil {
			t.Fatalf("%v Get: %v", mode, err)
		}
		if _, _, _, err := g.Get(40, key); err != nil {
			t.Fatalf("%v Get: %v", mode, err)
		}
		st := g.Stats()
		if st.Puts != 1 || st.Gets != 2 {
			t.Errorf("%v stats = %d puts, %d gets; want 1, 2 (logical, not ×R)", mode, st.Puts, st.Gets)
		}
		if want := int64(kv.KeySize + 5); st.UserBytesWritten != want {
			t.Errorf("%v UserBytesWritten = %d, want %d", mode, st.UserBytesWritten, want)
		}
		// Space is honestly replicated: 3× one replica's footprint.
		one := int64(kv.KeySize + 5)
		if got := g.DiskUsageBytes(); got != 3*one {
			t.Errorf("%v DiskUsageBytes = %d, want %d", mode, got, 3*one)
		}
	}
}

func TestKillReviveReconcile(t *testing.T) {
	for _, mode := range []Mode{Chain, Quorum} {
		g, stubs := mustGroup(t, mode, 10, 10, 10)
		for id := uint64(0); id < 20; id++ {
			if _, err := g.Put(0, kv.EncodeKey(id), []byte(fmt.Sprintf("v%d", id)), 0); err != nil {
				t.Fatalf("%v Put: %v", mode, err)
			}
		}
		if err := g.Kill(1); err != nil {
			t.Fatalf("Kill: %v", err)
		}
		if err := g.Kill(1); err == nil {
			t.Errorf("double Kill: want error")
		}
		// Degraded writes: deletes and overwrites the dead replica misses.
		if _, err := g.Delete(1000, kv.EncodeKey(3)); err != nil {
			t.Fatalf("%v Delete: %v", mode, err)
		}
		if _, err := g.Put(1000, kv.EncodeKey(5), []byte("new"), 0); err != nil {
			t.Fatalf("%v Put: %v", mode, err)
		}
		if _, err := g.Put(1000, kv.EncodeKey(99), []byte("fresh"), 0); err != nil {
			t.Fatalf("%v Put: %v", mode, err)
		}
		// Revive with an empty engine (worst case: it lost everything).
		blank := newStub(10)
		if err := g.Revive(1, Member{Engine: blank, Start: 2000}); err != nil {
			t.Fatalf("Revive: %v", err)
		}
		if !g.Stale(1) {
			t.Fatalf("revived replica is not stale")
		}
		// Stale replicas receive new writes but never serve.
		if _, err := g.Put(2000, kv.EncodeKey(100), []byte("post"), 0); err != nil {
			t.Fatalf("%v Put post-revive: %v", mode, err)
		}
		if _, ok := blank.m[string(kv.EncodeKey(100))]; !ok {
			t.Errorf("%v: stale replica missed a new write", mode)
		}
		if _, err := g.Reconcile(3000); err != nil {
			t.Fatalf("%v Reconcile: %v", mode, err)
		}
		if g.Stale(1) {
			t.Errorf("%v: replica still stale after Reconcile", mode)
		}
		// Every replica must now be byte-comparable.
		_, want, err := stubs[0].Scan(4000, nil, 0)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		for i := 1; i < 3; i++ {
			_, got, err := g.Engine(i).(*stubEngine).Scan(4000, nil, 0)
			if err != nil {
				t.Fatalf("scan replica %d: %v", i, err)
			}
			if !sameEntries(want, got) {
				t.Errorf("%v: replica %d diverges after Reconcile", mode, i)
			}
		}
		// And the group must still serve the exact state.
		_, v, found, err := g.Get(5000, kv.EncodeKey(5))
		if err != nil || !found || string(v) != "new" {
			t.Errorf("%v Get(5) = %q, %v, %v", mode, v, found, err)
		}
		_, _, found, err = g.Get(5000, kv.EncodeKey(3))
		if err != nil || found {
			t.Errorf("%v Get(3): deleted key resurfaced (found=%v, err=%v)", mode, found, err)
		}
	}
}

func sameEntries(a, b []kv.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) || a[i].ValueLen != b[i].ValueLen {
			return false
		}
	}
	return true
}

func TestScanServesConsistentReplica(t *testing.T) {
	g, stubs := mustGroup(t, Chain, 10, 10, 10)
	for id := uint64(0); id < 5; id++ {
		if _, err := g.Put(0, kv.EncodeKey(id), []byte("v"), 0); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// A stale replica must not serve scans.
	if err := g.Kill(2); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if err := g.Revive(2, Member{Engine: newStub(10), Start: 100}); err != nil {
		t.Fatalf("Revive: %v", err)
	}
	_, ents, err := g.Scan(200, kv.EncodeKey(0), 100)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(ents) != 5 {
		t.Errorf("Scan over a group with a stale tail returned %d entries, want 5", len(ents))
	}
	_ = stubs
}

func TestGroupCommitForwarding(t *testing.T) {
	g, stubs := mustGroup(t, Chain, 10, 20, 30)
	g.BeginGroupCommit()
	for _, s := range stubs {
		if s.gcOpen != 1 {
			t.Fatalf("BeginGroupCommit not forwarded")
		}
	}
	done, err := g.EndGroupCommit(100)
	if err != nil {
		t.Fatalf("EndGroupCommit: %v", err)
	}
	// Chain ack: the tail's sync. Replica clocks start at 0, so each
	// syncs at 100+lat; the tail finishes at 130.
	if done != 130 {
		t.Errorf("chain EndGroupCommit = %v, want 130", done)
	}
	gq, _ := mustGroup(t, Quorum, 10, 20, 30)
	gq.BeginGroupCommit()
	done, err = gq.EndGroupCommit(100)
	if err != nil {
		t.Fatalf("quorum EndGroupCommit: %v", err)
	}
	if done != 120 {
		t.Errorf("quorum EndGroupCommit = %v, want 120 (majority-th sync)", done)
	}
}

func TestDeterministicAcks(t *testing.T) {
	run := func(mode Mode) []sim.Duration {
		g, _ := mustGroup(t, mode, 7, 13, 29)
		var acks []sim.Duration
		now := sim.Duration(0)
		for id := uint64(0); id < 50; id++ {
			done, err := g.Put(now, kv.EncodeKey(id%17), []byte("v"), 0)
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			acks = append(acks, done)
			d2, _, _, err := g.Get(done, kv.EncodeKey(id%17))
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			acks = append(acks, d2)
			now = d2
		}
		return acks
	}
	for _, mode := range []Mode{Chain, Quorum} {
		a, b := run(mode), run(mode)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: ack %d differs between identical runs: %v vs %v", mode, i, a[i], b[i])
			}
		}
	}
}

func TestNewRejectsBadGroups(t *testing.T) {
	if _, err := New(Chain, nil); err == nil {
		t.Errorf("New with no members: want error")
	}
	if _, err := New(Chain, []Member{{}}); err == nil {
		t.Errorf("New with nil engine: want error")
	}
	if _, err := New(Mode(9), []Member{{Engine: newStub(1)}}); err == nil {
		t.Errorf("New with bad mode: want error")
	}
	g, _ := mustGroup(t, Chain, 1)
	if err := g.Kill(5); err == nil {
		t.Errorf("Kill out of range: want error")
	}
	if err := g.Revive(0, Member{Engine: newStub(1)}); err == nil {
		t.Errorf("Revive of a live replica: want error")
	}
}
