// Package sim provides the discrete-event simulation primitives used by
// every other layer of ptsbench: a virtual clock, a FIFO device resource
// with a configurable service-time model, background worker actors, and a
// deterministic random number generator.
//
// The simulation model is deliberately simple ("DES-lite"): a single
// foreground actor (the benchmark's user thread) owns the global clock,
// and background actors (flush, compaction, checkpoint, destage workers)
// are pumped up to the foreground clock before each foreground operation.
// All actors contend for the same FIFO device resource, so background
// bursts delay foreground I/O exactly as they do on real hardware.
package sim

import "time"

// Duration is virtual time expressed in nanoseconds. It is kept distinct
// from time.Duration in signatures that mix virtual and wall-clock time,
// but converts freely.
type Duration = time.Duration

// Clock is a virtual clock. The zero value reads time 0.
//
// Clock is not safe for concurrent use; the simulation is single-threaded
// by design (determinism is a core requirement of the harness).
type Clock struct {
	now Duration
}

// NewClock returns a clock set to time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Duration { return c.now }

// Advance moves the clock forward by d. Negative d is ignored: virtual
// time never runs backwards.
func (c *Clock) Advance(d Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is in the future.
func (c *Clock) AdvanceTo(t Duration) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only tests should use this.
func (c *Clock) Reset() { c.now = 0 }
