package sim

// MultiResource models a shared dispatch queue feeding N independent
// FIFO service lanes — the internal parallelism of an SSD, where the
// host-visible queue fans out over channels × ways (dies). Requests
// submitted at overlapping virtual times run concurrently as long as
// free lanes remain; once every lane is busy, later requests queue
// behind the earliest-finishing lane, exactly like commands waiting in
// an NVMe submission queue.
//
// A MultiResource with one lane is behaviourally identical to Resource.
// Like all sim primitives it is single-threaded and deterministic: ties
// between equally idle lanes break toward the lowest lane index.
type MultiResource struct {
	lanes     []Duration // per-lane busyUntil
	busyTotal Duration
}

// NewMultiResource returns an idle resource with n service lanes
// (n < 1 is treated as 1).
func NewMultiResource(n int) *MultiResource {
	if n < 1 {
		n = 1
	}
	return &MultiResource{lanes: make([]Duration, n)}
}

// Lanes returns the number of service lanes.
func (m *MultiResource) Lanes() int { return len(m.lanes) }

// Acquire dispatches a request submitted at time now to the
// earliest-available lane and returns its completion time. Service must
// be >= 0.
func (m *MultiResource) Acquire(now, service Duration) Duration {
	best := 0
	for i := 1; i < len(m.lanes); i++ {
		if m.lanes[i] < m.lanes[best] {
			best = i
		}
	}
	return m.AcquireLane(best, now, service)
}

// AcquireLane queues a request on a specific lane (placement-aware
// callers use it to model data striped over channels and ways) and
// returns its completion time.
func (m *MultiResource) AcquireLane(lane int, now, service Duration) Duration {
	start := now
	if m.lanes[lane] > start {
		start = m.lanes[lane]
	}
	done := start + service
	m.lanes[lane] = done
	m.busyTotal += service
	return done
}

// BusyUntil reports the time at which the whole resource drains (the
// maximum over lanes) — callers use it to quiesce.
func (m *MultiResource) BusyUntil() Duration {
	var max Duration
	for _, b := range m.lanes {
		if b > max {
			max = b
		}
	}
	return max
}

// NextIdle reports the earliest time at which any lane becomes free.
func (m *MultiResource) NextIdle() Duration {
	min := m.lanes[0]
	for _, b := range m.lanes[1:] {
		if b < min {
			min = b
		}
	}
	return min
}

// BusyTotal reports the cumulative service time ever accepted, summed
// over lanes. Dividing by (elapsed time × Lanes()) yields utilization.
func (m *MultiResource) BusyTotal() Duration { return m.busyTotal }

// Idle reports whether every lane is idle at time now.
func (m *MultiResource) Idle(now Duration) bool { return m.BusyUntil() <= now }
