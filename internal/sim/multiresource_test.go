package sim

import (
	"testing"
	"time"
)

func TestMultiResourceSingleLaneMatchesResource(t *testing.T) {
	r := NewResource()
	m := NewMultiResource(1)
	subs := []struct {
		at, svc Duration
	}{
		{0, 10 * time.Millisecond},
		{2 * time.Millisecond, 5 * time.Millisecond},
		{time.Second, time.Millisecond},
	}
	for _, s := range subs {
		want := r.Acquire(s.at, s.svc)
		got := m.Acquire(s.at, s.svc)
		if got != want {
			t.Fatalf("single-lane MultiResource diverged: %v vs %v", got, want)
		}
	}
	if m.BusyTotal() != r.BusyTotal() {
		t.Fatalf("BusyTotal %v vs %v", m.BusyTotal(), r.BusyTotal())
	}
	if m.BusyUntil() != r.BusyUntil() {
		t.Fatalf("BusyUntil %v vs %v", m.BusyUntil(), r.BusyUntil())
	}
}

func TestMultiResourceOverlap(t *testing.T) {
	m := NewMultiResource(2)
	// Two requests at t=0 run on distinct lanes and overlap fully.
	d1 := m.Acquire(0, 10*time.Millisecond)
	d2 := m.Acquire(0, 10*time.Millisecond)
	if d1 != 10*time.Millisecond || d2 != 10*time.Millisecond {
		t.Fatalf("overlapping requests: %v, %v (want both 10ms)", d1, d2)
	}
	// A third queues behind the earliest-finishing lane.
	d3 := m.Acquire(0, time.Millisecond)
	if d3 != 11*time.Millisecond {
		t.Fatalf("third request %v, want 11ms", d3)
	}
	if m.BusyTotal() != 21*time.Millisecond {
		t.Fatalf("BusyTotal %v, want 21ms", m.BusyTotal())
	}
}

func TestMultiResourceAcquireLaneFIFO(t *testing.T) {
	m := NewMultiResource(4)
	// Requests pinned to one lane serialize; another lane stays free.
	d1 := m.AcquireLane(2, 0, 5*time.Millisecond)
	d2 := m.AcquireLane(2, time.Millisecond, 5*time.Millisecond)
	if d1 != 5*time.Millisecond || d2 != 10*time.Millisecond {
		t.Fatalf("lane FIFO: %v, %v", d1, d2)
	}
	if d := m.AcquireLane(0, time.Millisecond, time.Millisecond); d != 2*time.Millisecond {
		t.Fatalf("free lane should start immediately: %v", d)
	}
	if m.NextIdle() != 0 {
		t.Fatalf("NextIdle %v, want 0 (lanes 1 and 3 never used)", m.NextIdle())
	}
	if m.BusyUntil() != 10*time.Millisecond {
		t.Fatalf("BusyUntil %v, want 10ms", m.BusyUntil())
	}
}

func TestMultiResourceDeterministicTieBreak(t *testing.T) {
	a := NewMultiResource(3)
	b := NewMultiResource(3)
	for i := 0; i < 100; i++ {
		at := Duration(i) * 100 * time.Microsecond
		if a.Acquire(at, time.Millisecond) != b.Acquire(at, time.Millisecond) {
			t.Fatalf("tie-break diverged at request %d", i)
		}
	}
}

func TestMultiResourceIdleAndLanes(t *testing.T) {
	m := NewMultiResource(0) // clamps to 1
	if m.Lanes() != 1 {
		t.Fatalf("Lanes = %d, want 1", m.Lanes())
	}
	if !m.Idle(0) {
		t.Fatal("new resource should be idle")
	}
	m.Acquire(0, time.Millisecond)
	if m.Idle(500 * time.Microsecond) {
		t.Fatal("should be busy at 0.5ms")
	}
	if !m.Idle(time.Millisecond) {
		t.Fatal("should be idle at 1ms")
	}
}
