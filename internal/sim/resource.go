package sim

// Resource models a FIFO-served shared resource, such as the internal
// bandwidth of an SSD. A request submitted at virtual time t with service
// time s completes at max(t, busyUntil) + s; busyUntil then advances to
// the completion time. This gives strict FIFO queueing: later submitters
// wait behind everything already accepted, which is how background
// compaction traffic delays foreground writes in the simulation.
type Resource struct {
	busyUntil Duration
	busyTotal Duration
}

// NewResource returns an idle resource.
func NewResource() *Resource { return &Resource{} }

// Acquire reserves the resource for service starting no earlier than now
// and returns the completion time. Service must be >= 0.
func (r *Resource) Acquire(now, service Duration) Duration {
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	done := start + service
	r.busyUntil = done
	r.busyTotal += service
	return done
}

// BusyUntil reports the time at which the resource next becomes idle.
func (r *Resource) BusyUntil() Duration { return r.busyUntil }

// BusyTotal reports the cumulative service time ever accepted. Dividing
// by elapsed virtual time yields utilization.
func (r *Resource) BusyTotal() Duration { return r.busyTotal }

// Idle reports whether the resource is idle at time now.
func (r *Resource) Idle(now Duration) bool { return r.busyUntil <= now }
