package sim

// RNG is a deterministic pseudo-random number generator (SplitMix64
// followed by xorshift mixing). Experiments must be reproducible
// bit-for-bit across runs, so all randomness in ptsbench flows through
// seeded RNG instances rather than math/rand global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so that small seeds do not produce small first outputs.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	// SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, tiny state.
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n called with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split returns a new generator whose stream is independent of the
// receiver's subsequent outputs; use it to give each subsystem its own
// stream from one experiment seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
