package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * time.Millisecond)
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.Advance(-time.Second) // negative ignored
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("Now() after negative advance = %v, want 5ms", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(10 * time.Second)
	if c.Now() != 10*time.Second {
		t.Fatalf("AdvanceTo failed: %v", c.Now())
	}
	c.AdvanceTo(time.Second) // past: no-op
	if c.Now() != 10*time.Second {
		t.Fatalf("AdvanceTo moved backwards: %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset failed: %v", c.Now())
	}
}

func TestResourceFIFO(t *testing.T) {
	r := NewResource()
	// First request at t=0 with 10ms service completes at 10ms.
	done1 := r.Acquire(0, 10*time.Millisecond)
	if done1 != 10*time.Millisecond {
		t.Fatalf("first completion %v, want 10ms", done1)
	}
	// Second request at t=2ms queues behind the first.
	done2 := r.Acquire(2*time.Millisecond, 5*time.Millisecond)
	if done2 != 15*time.Millisecond {
		t.Fatalf("second completion %v, want 15ms", done2)
	}
	// A request after the resource went idle starts immediately.
	done3 := r.Acquire(time.Second, time.Millisecond)
	if done3 != time.Second+time.Millisecond {
		t.Fatalf("third completion %v", done3)
	}
	if r.BusyTotal() != 16*time.Millisecond {
		t.Fatalf("BusyTotal %v, want 16ms", r.BusyTotal())
	}
}

func TestResourceIdle(t *testing.T) {
	r := NewResource()
	if !r.Idle(0) {
		t.Fatal("new resource should be idle")
	}
	r.Acquire(0, time.Millisecond)
	if r.Idle(500 * time.Microsecond) {
		t.Fatal("resource should be busy at 0.5ms")
	}
	if !r.Idle(time.Millisecond) {
		t.Fatal("resource should be idle at 1ms")
	}
}

// Property: completion times from a FIFO resource are non-decreasing in
// submission order, whatever the (time, service) sequence.
func TestResourceMonotoneProperty(t *testing.T) {
	f := func(times []uint32, services []uint32) bool {
		r := NewResource()
		n := len(times)
		if len(services) < n {
			n = len(services)
		}
		var prev Duration = -1
		var now Duration
		for i := 0; i < n; i++ {
			now += Duration(times[i] % 1000) // submissions move forward
			done := r.Acquire(now, Duration(services[i]%100000))
			if done < prev || done < now {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type countJob struct {
	chunks int
	chunk  Duration
}

func (j *countJob) Step(now Duration) (Duration, bool) {
	j.chunks--
	return now + j.chunk, j.chunks <= 0
}

func TestWorkerPump(t *testing.T) {
	w := NewWorker("test")
	w.Submit(&countJob{chunks: 10, chunk: time.Millisecond})
	// Pump to 5ms: exactly 5 chunks should have run (the 5th ends at 5ms,
	// then the clock is no longer < target).
	end := w.Pump(5 * time.Millisecond)
	if end != 5*time.Millisecond {
		t.Fatalf("Pump end %v, want 5ms", end)
	}
	if w.QueueLen() != 1 {
		t.Fatalf("job should still be queued")
	}
	// Pump far ahead: the job finishes at 10ms and the worker then
	// catches up to the target.
	end = w.Pump(time.Second)
	if end != time.Second {
		t.Fatalf("Pump end %v, want 1s", end)
	}
	if w.QueueLen() != 0 {
		t.Fatalf("queue should be empty")
	}
}

func TestWorkerRunUntilDrained(t *testing.T) {
	w := NewWorker("drain")
	w.Submit(&countJob{chunks: 3, chunk: 2 * time.Millisecond})
	w.Submit(&countJob{chunks: 2, chunk: time.Millisecond})
	end := w.RunUntilDrained()
	if end != 8*time.Millisecond {
		t.Fatalf("drain end %v, want 8ms", end)
	}
}

func TestWorkerIdlePuller(t *testing.T) {
	w := NewWorker("puller")
	produced := 0
	w.SetIdlePuller(func() Job {
		if produced >= 3 {
			return nil
		}
		produced++
		return &countJob{chunks: 1, chunk: time.Millisecond}
	})
	end := w.Pump(10 * time.Millisecond)
	if produced != 3 {
		t.Fatalf("idle puller produced %d jobs, want 3", produced)
	}
	if end != 10*time.Millisecond {
		t.Fatalf("worker should catch up to target, got %v", end)
	}
}

func TestWorkerStuckJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for stuck job")
		}
	}()
	w := NewWorker("stuck")
	w.Submit(JobFunc(func(now Duration) (Duration, bool) { return now, false }))
	w.Pump(time.Second)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of bounds: %d", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestRNGUniformity(t *testing.T) {
	// Chi-square-ish sanity check over 16 buckets.
	r := NewRNG(123)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	want := n / 16
	for i, got := range buckets {
		if got < want*9/10 || got > want*11/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, got, want)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	// The split stream must differ from the parent's continuing stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided with parent %d times", same)
	}
}

func TestWorkerAccessors(t *testing.T) {
	w := NewWorker("acc")
	if w.Name() != "acc" {
		t.Fatalf("Name = %q", w.Name())
	}
	if w.Now() != 0 {
		t.Fatalf("Now = %v", w.Now())
	}
}

func TestResourceBusyUntil(t *testing.T) {
	r := NewResource()
	r.Acquire(0, 3*time.Millisecond)
	if r.BusyUntil() != 3*time.Millisecond {
		t.Fatalf("BusyUntil = %v", r.BusyUntil())
	}
}

func TestRNGUint64nBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n out of bounds: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Uint64n(0)")
		}
	}()
	r.Uint64n(0)
}

func TestWorkerStepOnce(t *testing.T) {
	w := NewWorker("step")
	if _, ok := w.StepOnce(); ok {
		t.Fatal("empty worker should not progress")
	}
	w.Submit(&countJob{chunks: 2, chunk: time.Millisecond})
	end, ok := w.StepOnce()
	if !ok || end != time.Millisecond {
		t.Fatalf("first step: %v %v", end, ok)
	}
	if w.QueueLen() != 1 {
		t.Fatal("job should still be queued after partial step")
	}
	end, ok = w.StepOnce()
	if !ok || end != 2*time.Millisecond {
		t.Fatalf("second step: %v %v", end, ok)
	}
	if w.QueueLen() != 0 {
		t.Fatal("job should be done")
	}
	// StepOnce pulls from the idle puller too.
	pulled := false
	w.SetIdlePuller(func() Job {
		if pulled {
			return nil
		}
		pulled = true
		return &countJob{chunks: 1, chunk: time.Millisecond}
	})
	if _, ok := w.StepOnce(); !ok {
		t.Fatal("StepOnce should pull from the idle puller")
	}
}

func TestRunUntilDrainedWithPuller(t *testing.T) {
	w := NewWorker("drain2")
	produced := 0
	w.SetIdlePuller(func() Job {
		if produced >= 2 {
			return nil
		}
		produced++
		return &countJob{chunks: 1, chunk: time.Millisecond}
	})
	end := w.RunUntilDrained()
	if produced != 2 || end != 2*time.Millisecond {
		t.Fatalf("drained %d jobs ending %v", produced, end)
	}
}
