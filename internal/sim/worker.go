package sim

// Job is a unit of background work executed incrementally by a Worker.
// Each call to Step performs one chunk of work starting at the worker's
// local time and returns the virtual time at which the chunk finished,
// plus whether the job is complete. Step must make progress: returning
// done=false with an unchanged time would spin the scheduler, so the
// Worker aborts (panics) if it detects a stuck job.
type Job interface {
	// Step executes the next chunk of the job at virtual time now and
	// returns the completion time of the chunk and whether the job has
	// finished.
	Step(now Duration) (end Duration, done bool)
}

// JobFunc adapts an ordinary function to the Job interface.
type JobFunc func(now Duration) (Duration, bool)

// Step implements Job.
func (f JobFunc) Step(now Duration) (Duration, bool) { return f(now) }

// Worker is a background actor with its own local clock and a FIFO queue
// of jobs. Pump drives the worker until its local clock catches up with
// the foreground clock; jobs execute in submission order, one at a time,
// mirroring a single background thread (e.g. one compaction thread).
type Worker struct {
	name string
	now  Duration
	// queue[head:] are the waiting jobs. Dequeuing advances head and the
	// slice is reset (keeping its capacity) whenever it drains, so a
	// steady submit/drain cycle allocates nothing — the previous
	// queue = queue[1:] dequeue permanently lost capacity and forced a
	// fresh allocation on every post-drain Submit.
	queue []Job
	head  int
	// onIdle, if non-nil, is consulted when the queue drains; it may
	// return a new job (pull-style scheduling). See SetIdlePuller.
	onIdle func() Job
}

// NewWorker returns a named worker with an empty queue. The name appears
// in diagnostics only.
func NewWorker(name string) *Worker {
	return &Worker{name: name}
}

// Name returns the worker's diagnostic name.
func (w *Worker) Name() string { return w.name }

// Now returns the worker's local virtual time.
func (w *Worker) Now() Duration { return w.now }

// QueueLen reports the number of jobs waiting, including the one in
// progress.
func (w *Worker) QueueLen() int { return len(w.queue) - w.head }

// Submit appends a job to the worker's queue.
func (w *Worker) Submit(j Job) { w.queue = append(w.queue, j) }

// pop removes the queue's front job, recycling the backing array when
// the queue drains.
func (w *Worker) pop() {
	w.queue[w.head] = nil // drop the reference so the job can be collected
	w.head++
	if w.head == len(w.queue) {
		w.queue = w.queue[:0]
		w.head = 0
	}
}

// SetIdlePuller registers a callback invoked whenever the worker's queue
// is empty during Pump; it may return a new job to run, or nil if there is
// no work. This lets an engine generate compaction work lazily instead of
// eagerly enqueueing it.
func (w *Worker) SetIdlePuller(f func() Job) { w.onIdle = f }

// Pump runs queued jobs until the worker's local clock reaches target or
// no work remains. It returns the worker's local time after pumping.
func (w *Worker) Pump(target Duration) Duration {
	if w.now < target && w.QueueLen() == 0 && w.onIdle != nil {
		if j := w.onIdle(); j != nil {
			w.queue = append(w.queue, j)
		}
	}
	for w.now < target && w.QueueLen() > 0 {
		job := w.queue[w.head]
		end, done := job.Step(w.now)
		if end < w.now {
			end = w.now
		}
		if !done && end == w.now {
			panic("sim: job made no progress on worker " + w.name)
		}
		w.now = end
		if done {
			w.pop()
			if w.QueueLen() == 0 && w.onIdle != nil {
				if j := w.onIdle(); j != nil {
					w.queue = append(w.queue, j)
				}
			}
		}
	}
	// A worker with no work is considered caught up.
	if w.QueueLen() == 0 && w.now < target {
		w.now = target
	}
	return w.now
}

// StepOnce executes a single chunk of the worker's current job (pulling
// one from the idle puller if the queue is empty) regardless of any
// target time. It returns the worker's local time afterwards and whether
// any progress was made. Engines use it to wait out write stalls: they
// step the background workers until the stall condition clears.
func (w *Worker) StepOnce() (Duration, bool) {
	if w.QueueLen() == 0 && w.onIdle != nil {
		if j := w.onIdle(); j != nil {
			w.queue = append(w.queue, j)
		}
	}
	if w.QueueLen() == 0 {
		return w.now, false
	}
	job := w.queue[w.head]
	end, done := job.Step(w.now)
	if end < w.now {
		end = w.now
	}
	if !done && end == w.now {
		panic("sim: job made no progress on worker " + w.name)
	}
	w.now = end
	if done {
		w.pop()
	}
	return w.now, true
}

// RunUntilDrained runs all queued work (and any work the idle puller
// produces) to completion regardless of the target time, returning the
// local time at which the queue drained. It is used at experiment
// shutdown to quiesce engines.
func (w *Worker) RunUntilDrained() Duration {
	for {
		if w.QueueLen() == 0 && w.onIdle != nil {
			if j := w.onIdle(); j != nil {
				w.queue = append(w.queue, j)
			}
		}
		if w.QueueLen() == 0 {
			return w.now
		}
		job := w.queue[w.head]
		end, done := job.Step(w.now)
		if end < w.now {
			end = w.now
		}
		if !done && end == w.now {
			panic("sim: job made no progress on worker " + w.name)
		}
		w.now = end
		if done {
			w.pop()
		}
	}
}
