package sstable

import "encoding/binary"

// bloomBitsPerKey matches RocksDB's default full-filter sizing.
const bloomBitsPerKey = 10

// Bloom is a split-free classic Bloom filter with double hashing.
type Bloom struct {
	bits  []byte
	k     uint32 // number of probes
	nbits uint32
}

// NewBloom sizes a filter for n keys.
func NewBloom(n int) *Bloom {
	if n < 1 {
		n = 1
	}
	nbits := uint32(n * bloomBitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	k := uint32(7) // ≈ 0.69 * bitsPerKey
	return &Bloom{
		bits:  make([]byte, (nbits+7)/8),
		k:     k,
		nbits: nbits,
	}
}

// hash64 is FNV-1a over the key.
func hash64(key []byte) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// Add inserts a key.
func (b *Bloom) Add(key []byte) {
	h := hash64(key)
	h1 := uint32(h)
	h2 := uint32(h >> 32)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + i*h2) % b.nbits
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

// MayContain reports whether the key may be present (false positives are
// possible, false negatives are not).
func (b *Bloom) MayContain(key []byte) bool {
	h := hash64(key)
	h1 := uint32(h)
	h2 := uint32(h >> 32)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + i*h2) % b.nbits
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes returns the filter's serialized size.
func (b *Bloom) SizeBytes() int { return len(b.bits) + 8 }

// BloomSizeBytes returns the serialized size NewBloom(n) would produce,
// without building the filter — the accounting path sizes the filter
// section lazily.
func BloomSizeBytes(n int) int {
	if n < 1 {
		n = 1
	}
	nbits := uint32(n * bloomBitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	return int(nbits+7)/8 + 8
}

// encode serializes the filter (k, nbits, bits).
func (b *Bloom) encode() []byte {
	out := make([]byte, 8+len(b.bits))
	binary.LittleEndian.PutUint32(out[0:], b.k)
	binary.LittleEndian.PutUint32(out[4:], b.nbits)
	copy(out[8:], b.bits)
	return out
}

// decodeBloom parses a serialized filter.
func decodeBloom(buf []byte) (*Bloom, bool) {
	if len(buf) < 8 {
		return nil, false
	}
	k := binary.LittleEndian.Uint32(buf[0:])
	nbits := binary.LittleEndian.Uint32(buf[4:])
	need := int(nbits+7) / 8
	if k == 0 || need > len(buf)-8 {
		return nil, false
	}
	return &Bloom{bits: append([]byte(nil), buf[8:8+need]...), k: k, nbits: nbits}, true
}
