package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// Builder accumulates sorted entries and produces a FileImage: the full
// on-disk layout of an SSTable, ready to be written out in chunks by a
// flush or compaction job. Keeping the image separate from the write lets
// jobs spread the device I/O over virtual time, which is what creates the
// realistic interference between compaction and foreground traffic.
type Builder struct {
	pageSize    int
	targetBlock int // data block payload target, bytes
	content     bool

	// Side index under construction.
	keyArena   []byte
	keyOffsets []uint32
	seqs       []uint64
	vlens      []uint32
	dels       []byte
	blocks     []blockMeta
	valArena   []byte   // content mode: retained value bytes, packed
	valOffsets []uint32 // content mode: len = entries+1

	curBlockBytes int   // payload bytes in the current block
	curBlockFirst int32 // first entry index of current block
	nextPage      int32 // next file page to be assigned
	lastKey       []byte

	data      []byte // serialized data blocks (content mode only)
	dataBytes int64  // logical payload bytes
}

// DefaultBlockBytes matches a common SSTable block target (32 KiB).
const DefaultBlockBytes = 32 << 10

// NewBuilder creates a builder. pageSize is the device page size; content
// selects whether real bytes are produced.
func NewBuilder(pageSize, targetBlockBytes int, content bool) *Builder {
	return NewBuilderHint(pageSize, targetBlockBytes, content, 0)
}

// NewBuilderHint is NewBuilder with an expected entry count: the side
// index under construction is presized for entryHint entries (16-byte
// keys assumed — a high estimate just wastes some slack), which converts
// the O(log n) reallocation churn of appending into a single right-sized
// allocation per column. Flush and compaction jobs know their input entry
// counts exactly, so their builder slices never regrow.
func NewBuilderHint(pageSize, targetBlockBytes int, content bool, entryHint int) *Builder {
	if targetBlockBytes <= 0 {
		targetBlockBytes = DefaultBlockBytes
	}
	if entryHint < 0 {
		entryHint = 0
	}
	b := &Builder{
		pageSize:    pageSize,
		targetBlock: targetBlockBytes,
		content:     content,
	}
	if entryHint > 0 {
		b.keyArena = make([]byte, 0, entryHint*16)
		b.keyOffsets = append(make([]uint32, 0, entryHint+1), 0)
		b.seqs = make([]uint64, 0, entryHint)
		b.vlens = make([]uint32, 0, entryHint)
		b.dels = make([]byte, 0, entryHint)
	} else {
		b.keyOffsets = []uint32{0}
	}
	if content {
		b.data = (*contentBufPool.Get().(*[]byte))[:0]
	}
	return b
}

// contentBufPool recycles the serialized-data scratch of content-mode
// builders (block buffers): Finish copies the laid-out bytes into the
// final image and returns the scratch here. Pointers to slices are
// pooled (not slice values) so Put/Get do not box a fresh interface
// allocation per cycle.
var contentBufPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// NumEntries returns the number of entries added so far.
func (b *Builder) NumEntries() int { return len(b.seqs) }

// EstimatedBytes returns the approximate final logical size.
func (b *Builder) EstimatedBytes() int64 { return b.dataBytes }

// Add appends an entry. Entries must arrive in strictly increasing key
// order (the builder enforces this).
func (b *Builder) Add(e *kv.Entry) error {
	if b.lastKey != nil && bytes.Compare(e.Key, b.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order (%x after %x)", e.Key, b.lastKey)
	}
	vl := e.ValueLen
	if e.Value != nil {
		vl = len(e.Value)
	}
	sz := entryHeaderSize + len(e.Key) + vl
	if b.curBlockBytes > 0 && b.curBlockBytes+sz > b.targetBlock {
		b.finishBlock()
	}
	idx := int32(len(b.seqs))
	if b.curBlockBytes == 0 {
		b.curBlockFirst = idx
	}
	b.keyArena = append(b.keyArena, e.Key...)
	b.keyOffsets = append(b.keyOffsets, uint32(len(b.keyArena)))
	b.seqs = append(b.seqs, e.Seq)
	b.vlens = append(b.vlens, uint32(vl))
	var del byte
	if e.Deleted {
		del = 1
	}
	b.dels = append(b.dels, del)
	b.lastKey = b.keyArena[b.keyOffsets[idx]:b.keyOffsets[idx+1]]

	if b.content {
		var hdr [entryHeaderSize]byte
		hdr[0] = del
		binary.LittleEndian.PutUint16(hdr[1:], uint16(len(e.Key)))
		binary.LittleEndian.PutUint32(hdr[3:], uint32(vl))
		binary.LittleEndian.PutUint64(hdr[7:], e.Seq)
		b.data = append(b.data, hdr[:]...)
		b.data = append(b.data, e.Key...)
		b.data = append(b.data, e.Value...)
		// Retain the value in the side index (arena-packed, like keys):
		// compactions merge through it, and their output blocks must
		// carry the real bytes.
		if b.valOffsets == nil {
			b.valOffsets = []uint32{0}
		}
		b.valArena = append(b.valArena, e.Value...)
		b.valOffsets = append(b.valOffsets, uint32(len(b.valArena)))
	}
	b.curBlockBytes += sz
	b.dataBytes += int64(sz)
	return nil
}

// AppendTableRange bulk-appends entries [i, j) of table t (which must
// all sort after the builder's current contents — the merge guarantees
// it). Entries land exactly as a sequence of per-entry Add calls would:
// identical block boundaries, identical byte accounting. When drop is
// set, tombstones are skipped (they do not contribute to size or block
// layout, matching the merge loop's skip-before-Add). The walk stops
// once the builder's data bytes reach limitBytes (checked after each
// appended entry, mirroring the per-entry roll check) and returns the
// next unconsumed index. Accounting mode only.
func (b *Builder) AppendTableRange(t *Table, i, j int, drop bool, limitBytes int64) int {
	if b.content || t.content {
		panic("sstable: AppendTableRange is accounting-mode only")
	}
	for ; i < j; i++ {
		if drop && t.dels[i] == 1 {
			continue
		}
		keyLen := int(t.keyOffsets[i+1] - t.keyOffsets[i])
		sz := entryHeaderSize + keyLen + int(t.vlens[i])
		if b.curBlockBytes > 0 && b.curBlockBytes+sz > b.targetBlock {
			b.finishBlock()
		}
		idx := int32(len(b.seqs))
		if b.curBlockBytes == 0 {
			b.curBlockFirst = idx
		}
		b.keyArena = append(b.keyArena, t.keyArena[t.keyOffsets[i]:t.keyOffsets[i+1]]...)
		b.keyOffsets = append(b.keyOffsets, uint32(len(b.keyArena)))
		b.seqs = append(b.seqs, t.seqs[i])
		b.vlens = append(b.vlens, t.vlens[i])
		b.dels = append(b.dels, t.dels[i])
		b.curBlockBytes += sz
		b.dataBytes += int64(sz)
		if b.dataBytes >= limitBytes {
			i++
			break
		}
	}
	if n := len(b.seqs); n > 0 {
		b.lastKey = b.keyArena[b.keyOffsets[n-1]:b.keyOffsets[n]]
	}
	return i
}

// finishBlock closes the current data block, page-aligning the next one.
func (b *Builder) finishBlock() {
	if b.curBlockBytes == 0 {
		return
	}
	pages := int32((b.curBlockBytes + b.pageSize - 1) / b.pageSize)
	b.blocks = append(b.blocks, blockMeta{
		firstEntry: b.curBlockFirst,
		startPage:  b.nextPage,
		pages:      pages,
	})
	b.nextPage += pages
	if b.content {
		// Pad the serialized data to the page boundary.
		pad := int(int64(b.nextPage)*int64(b.pageSize)) - len(b.data)
		if pad > 0 {
			b.data = append(b.data, make([]byte, pad)...)
		}
	}
	b.curBlockBytes = 0
}

// FileImage is a fully laid-out SSTable ready to be written to a file.
type FileImage struct {
	Pages     int64  // total file length in pages
	Data      []byte // nil in accounting mode, else Pages*pageSize bytes
	SizeBytes int64  // logical size (data + index + filter + footer)

	table *Table // side index, adopted by Install
}

// Finish closes the table layout: remaining data block, index block,
// Bloom filter and footer. The returned image is independent of the
// builder.
func (b *Builder) Finish(id uint64) *FileImage {
	b.finishBlock()
	n := len(b.seqs)
	// In accounting mode the Bloom filter is built lazily on the table's
	// first probe (see Table.MayContain): write-heavy runs churn through
	// tables that die in compactions without ever serving a Get, and the
	// per-key hashing + scattered bit-sets were the most expensive part
	// of sealing a table. Content mode needs the bits now — they are
	// serialized into the file image.
	var bloom *Bloom
	if b.content {
		bloom = NewBloom(n)
		for i := 0; i < n; i++ {
			bloom.Add(b.keyArena[b.keyOffsets[i]:b.keyOffsets[i+1]])
		}
	}
	// Metadata sections: index block (16 bytes per block entry as laid
	// out below), filter, footer. They are written page-aligned after
	// the data.
	indexBytes := 4 + 16*len(b.blocks)
	filterBytes := BloomSizeBytes(n)
	const footerBytes = 32
	metaBytes := indexBytes + filterBytes + footerBytes
	metaPages := int64((metaBytes + b.pageSize - 1) / b.pageSize)
	totalPages := int64(b.nextPage) + metaPages
	if totalPages == 0 {
		totalPages = 1 // empty table still occupies its footer page
	}

	t := &Table{
		ID:         id,
		keyArena:   b.keyArena,
		keyOffsets: b.keyOffsets,
		seqs:       b.seqs,
		vlens:      b.vlens,
		dels:       b.dels,
		blocks:     b.blocks,
		bloom:      bloom,
		valArena:   b.valArena,
		valOffsets: b.valOffsets,
		numEntries: n,
		sizeBytes:  b.dataBytes + int64(metaBytes),
		filePages:  totalPages,
		pageSize:   b.pageSize,
		content:    b.content,
	}

	img := &FileImage{
		Pages:     totalPages,
		SizeBytes: t.sizeBytes,
		table:     t,
	}
	if b.content {
		data := make([]byte, totalPages*int64(b.pageSize))
		copy(data, b.data)
		scratch := b.data[:0]
		contentBufPool.Put(&scratch)
		b.data = nil
		off := int64(b.nextPage) * int64(b.pageSize)
		// Index block: count then 16 bytes per block.
		binary.LittleEndian.PutUint32(data[off:], uint32(len(b.blocks)))
		off += 4
		for _, bm := range b.blocks {
			binary.LittleEndian.PutUint32(data[off:], uint32(bm.firstEntry))
			binary.LittleEndian.PutUint32(data[off+4:], uint32(bm.startPage))
			binary.LittleEndian.PutUint32(data[off+8:], uint32(bm.pages))
			off += 16
		}
		// Filter.
		copy(data[off:], bloom.encode())
		// Footer: fixed 32 bytes at the very end of the file.
		foot := totalPages*int64(b.pageSize) - footerBytes
		binary.LittleEndian.PutUint32(data[foot:], footerMagic)
		binary.LittleEndian.PutUint64(data[foot+4:], uint64(n))
		binary.LittleEndian.PutUint64(data[foot+12:], id)
		binary.LittleEndian.PutUint32(data[foot+20:], uint32(b.nextPage)) // metadata start page
		binary.LittleEndian.PutUint32(data[foot+24:], uint32(len(b.blocks)))
		img.Data = data
	}
	return img
}

// WriteChunk appends up to maxPages of the image to file f starting at
// virtual time now. written tracks progress across calls (start at 0).
// It returns the completion time and the new progress; done reports
// whether the image is fully on disk.
func (img *FileImage) WriteChunk(now sim.Duration, f *extfs.File, written int64, maxPages int) (sim.Duration, int64, bool, error) {
	remaining := img.Pages - written
	if remaining <= 0 {
		return now, written, true, nil
	}
	n := int64(maxPages)
	if n > remaining {
		n = remaining
	}
	var data []byte
	if img.Data != nil {
		ps := int64(len(img.Data)) / img.Pages
		data = img.Data[written*ps : (written+n)*ps]
	}
	// Attribute logical bytes proportionally via cumulative shares, so
	// the per-chunk amounts telescope to exactly SizeBytes.
	logical := img.SizeBytes*(written+n)/img.Pages - img.SizeBytes*written/img.Pages
	done, err := f.Append(now, int(n), data, logical)
	if err != nil {
		return now, written, false, err
	}
	written += n
	return done, written, written == img.Pages, nil
}

// ID returns the table id embedded in the image's footer. The owning
// file MUST be named for it (lsm names files sst-<id>): recovery binds
// the reopened footer id to the file name to catch a stale table image
// resurrected by a lying fsync or a misdirected write.
func (img *FileImage) ID() uint64 { return img.table.ID }

// Install finalizes the image into a Table bound to file f. Call it after
// the image has been fully written.
func (img *FileImage) Install(f *extfs.File) *Table {
	img.table.file = f
	img.table.fileName = f.Name()
	return img.table
}

// OpenFromFile rebuilds a Table by parsing a previously written file
// (content mode only): it reads the footer, index and filter, then scans
// the data blocks to reconstruct the side index. now threads the device
// time for the reads; the returned time includes the full scan, which is
// what an engine pays to open a table it has no cached metadata for.
func OpenFromFile(f *extfs.File, pageSize int, now sim.Duration) (*Table, sim.Duration, error) {
	pages := f.SizePages()
	if pages == 0 {
		return nil, now, fmt.Errorf("sstable: file %s is empty", f.Name())
	}
	buf := make([]byte, pages*int64(pageSize))
	done, err := f.ReadAt(now, 0, int(pages), buf)
	if err != nil {
		return nil, now, err
	}
	t, err := parseTable(buf, pageSize)
	if err != nil {
		return nil, done, fmt.Errorf("sstable: parsing %s: %w", f.Name(), err)
	}
	t.file = f
	t.fileName = f.Name()
	t.filePages = pages
	return t, done, nil
}

// parseTable reconstructs the side index from the serialized file using
// the footer, index block and filter written by Finish.
func parseTable(data []byte, pageSize int) (*Table, error) {
	if len(data) < 32 {
		return nil, fmt.Errorf("file too small")
	}
	foot := len(data) - 32
	if binary.LittleEndian.Uint32(data[foot:]) != footerMagic {
		return nil, fmt.Errorf("footer magic not found")
	}
	n := int(binary.LittleEndian.Uint64(data[foot+4:]))
	id := binary.LittleEndian.Uint64(data[foot+12:])
	metaStart := int(binary.LittleEndian.Uint32(data[foot+20:])) * pageSize
	numBlocks := int(binary.LittleEndian.Uint32(data[foot+24:]))
	if metaStart < 0 || metaStart+4+16*numBlocks > len(data) {
		return nil, fmt.Errorf("corrupt footer (metaStart %d, blocks %d)", metaStart, numBlocks)
	}
	if got := int(binary.LittleEndian.Uint32(data[metaStart:])); got != numBlocks {
		return nil, fmt.Errorf("index count %d disagrees with footer %d", got, numBlocks)
	}
	t := &Table{
		ID:         id,
		keyOffsets: []uint32{0},
		numEntries: n,
		pageSize:   pageSize,
		content:    true,
	}
	off := metaStart + 4
	for i := 0; i < numBlocks; i++ {
		t.blocks = append(t.blocks, blockMeta{
			firstEntry: int32(binary.LittleEndian.Uint32(data[off:])),
			startPage:  int32(binary.LittleEndian.Uint32(data[off+4:])),
			pages:      int32(binary.LittleEndian.Uint32(data[off+8:])),
		})
		off += 16
	}
	bloom, ok := decodeBloom(data[off:])
	if !ok {
		return nil, fmt.Errorf("corrupt bloom filter")
	}
	t.bloom = bloom

	// Rebuild the per-entry side index by walking the data blocks (their
	// extents are now known exactly from the index).
	entries := 0
	for bi, bm := range t.blocks {
		pos := int(bm.startPage) * pageSize
		last := bi == len(t.blocks)-1
		blockEntries := n - int(bm.firstEntry)
		if !last {
			blockEntries = int(t.blocks[bi+1].firstEntry - bm.firstEntry)
		}
		for j := 0; j < blockEntries; j++ {
			if pos+entryHeaderSize > len(data) {
				return nil, fmt.Errorf("truncated entry in block %d", bi)
			}
			del := data[pos]
			kl := int(binary.LittleEndian.Uint16(data[pos+1:]))
			vl := int(binary.LittleEndian.Uint32(data[pos+3:]))
			seq := binary.LittleEndian.Uint64(data[pos+7:])
			if kl == 0 || pos+entryHeaderSize+kl+vl > len(data) {
				return nil, fmt.Errorf("corrupt entry %d in block %d", j, bi)
			}
			key := data[pos+entryHeaderSize : pos+entryHeaderSize+kl]
			t.keyArena = append(t.keyArena, key...)
			t.keyOffsets = append(t.keyOffsets, uint32(len(t.keyArena)))
			t.seqs = append(t.seqs, seq)
			t.vlens = append(t.vlens, uint32(vl))
			t.dels = append(t.dels, del)
			if t.valOffsets == nil {
				t.valOffsets = []uint32{0}
			}
			t.valArena = append(t.valArena, data[pos+entryHeaderSize+kl:pos+entryHeaderSize+kl+vl]...)
			t.valOffsets = append(t.valOffsets, uint32(len(t.valArena)))
			entries++
			pos += entryHeaderSize + kl + vl
		}
	}
	if entries != n {
		return nil, fmt.Errorf("entry count %d disagrees with footer %d", entries, n)
	}
	var size int64
	for i := 0; i < n; i++ {
		size += int64(entryHeaderSize) + int64(t.keyOffsets[i+1]-t.keyOffsets[i]) + int64(t.vlens[i])
	}
	t.sizeBytes = size
	return t, nil
}
