package sstable

import (
	"bytes"
	"testing"

	"ptsbench/internal/kv"
)

// buildContentBlock serializes one data block the way the unit tests
// build tables: n entries with SynthValue payloads through the content
// builder. It returns the raw bytes of the first data block.
func buildContentBlock(n, valLen int) []byte {
	b := NewBuilder(4096, DefaultBlockBytes, true)
	val := make([]byte, valLen)
	for i := 0; i < n; i++ {
		k := kv.EncodeKey(uint64(i))
		kv.SynthValue(val, k, uint64(i))
		if err := b.Add(&kv.Entry{Key: k, Value: val}); err != nil {
			panic(err)
		}
	}
	img := b.Finish(1)
	return img.Data
}

// FuzzBlockEntryValue feeds arbitrary block bytes to the data-block
// value walk that sits under every content-mode Get. Seeds come from
// the same block shapes the unit tests build (small/large values,
// many/few entries), so the fuzzer starts from well-formed corpora and
// mutates toward the corruption edges. The walk must never panic: it
// either returns the value or a corruption error.
func FuzzBlockEntryValue(f *testing.F) {
	f.Add(buildContentBlock(16, 32), 3)
	f.Add(buildContentBlock(100, 8), 99)
	f.Add(buildContentBlock(1, 512), 0)
	f.Add([]byte{}, 0)
	f.Add([]byte{0, 1, 2, 3}, 1)
	f.Fuzz(func(t *testing.T, block []byte, idx int) {
		if idx < 0 || idx > 1<<16 {
			return // the walk is linear in idx; bound the work, not the input
		}
		v, err := blockEntryValue(block, idx)
		if err == nil && v == nil {
			t.Fatal("nil value without error")
		}
	})
}

// FuzzTableLookup drives the whole table lookup surface — binary search,
// block mapping, range charging — over tables built from fuzz-chosen key
// sets, and cross-checks the found entries against the input. Seeded
// from the unit-test corpus shapes.
func FuzzTableLookup(f *testing.F) {
	f.Add(uint64(1), uint16(100), uint64(50))
	f.Add(uint64(7), uint16(1), uint64(0))
	f.Add(uint64(9), uint16(4000), uint64(12345))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, probe uint64) {
		if n == 0 {
			return
		}
		// Deterministic, strictly increasing key ids derived from seed.
		b := NewBuilderHint(4096, 4096, false, int(n))
		ids := make([]uint64, 0, n)
		id := seed % 97
		for i := 0; i < int(n); i++ {
			ids = append(ids, id)
			if err := b.Add(&kv.Entry{Key: kv.EncodeKey(id), ValueLen: int(id % 300), Seq: uint64(i)}); err != nil {
				t.Fatal(err)
			}
			id += 1 + (id^seed)%13
		}
		tab := b.Finish(1).table

		// search returns the first index with key >= probe, and the key
		// set must be found exactly.
		pk := kv.EncodeKey(probe)
		i := tab.search(pk)
		if i < 0 || i > tab.NumEntries() {
			t.Fatalf("search out of range: %d", i)
		}
		if i < tab.NumEntries() && kv.CompareKeys(tab.KeyAt(i), pk) < 0 {
			t.Fatal("search landed before probe")
		}
		if i > 0 && kv.CompareKeys(tab.KeyAt(i-1), pk) >= 0 {
			t.Fatal("search skipped a candidate")
		}
		for pos, want := range ids {
			j := tab.search(kv.EncodeKey(want))
			if j != pos || !bytes.Equal(tab.KeyAt(j), kv.EncodeKey(want)) {
				t.Fatalf("key %d not found at %d (got %d)", want, pos, j)
			}
			// Every entry maps into a valid block that covers it.
			bi := tab.blockOf(j)
			if bi < 0 || bi >= len(tab.blocks) {
				t.Fatalf("blockOf(%d) = %d out of range", j, bi)
			}
			if int(tab.blocks[bi].firstEntry) > j {
				t.Fatalf("blockOf(%d) = %d starts after the entry", j, bi)
			}
			if bi+1 < len(tab.blocks) && int(tab.blocks[bi+1].firstEntry) <= j {
				t.Fatalf("blockOf(%d) = %d ends before the entry", j, bi)
			}
		}
	})
}
