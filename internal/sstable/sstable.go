// Package sstable implements the sorted-string-table file format used by
// the LSM engine: page-aligned data blocks of fixed-header entries, an
// index block, a Bloom filter, and a footer.
//
// Every table keeps a compact in-memory side index (key arena + offsets +
// per-entry metadata), which serves two purposes: it is the block index
// and filter a real engine would cache, and it lets the simulation run in
// accounting-only mode — where value bytes are charged to the device but
// not materialized — without losing merge or lookup correctness.
package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// entryHeaderSize is the fixed on-disk per-entry header:
// flags(1) + keyLen(2) + valueLen(4) + seq(8).
const entryHeaderSize = 15

// footerSize holds counts and section offsets; fixed one page in the
// on-disk layout for simplicity.
const footerMagic = 0x5354424C // "STBL"

// EncodedEntrySize returns the on-disk bytes entry e occupies in a data
// block.
func EncodedEntrySize(e *kv.Entry) int {
	vl := e.ValueLen
	if e.Value != nil {
		vl = len(e.Value)
	}
	return entryHeaderSize + len(e.Key) + vl
}

// blockMeta locates one data block inside the file.
type blockMeta struct {
	firstEntry int32 // index of the block's first entry
	startPage  int32 // file page where the block starts
	pages      int32 // block length in pages
}

// Table is an immutable on-disk sorted table plus its in-memory side
// index.
type Table struct {
	ID       uint64
	file     *extfs.File
	fileName string

	// Side index (always in memory).
	keyArena   []byte
	keyOffsets []uint32 // len = numEntries+1
	seqs       []uint64
	vlens      []uint32
	dels       []byte // 1 = tombstone
	blocks     []blockMeta
	bloom      *Bloom
	// valArena/valOffsets hold the value bytes in content mode (nil in
	// accounting mode), arena-packed like the keys. Compactions merge
	// through the side index, so rebuilding well-formed blocks for the
	// output tables needs the values here.
	valArena   []byte
	valOffsets []uint32 // len = numEntries+1

	numEntries int
	sizeBytes  int64 // logical bytes (payload + metadata sections)
	filePages  int64
	pageSize   int
	content    bool
}

// NumEntries returns the number of entries.
func (t *Table) NumEntries() int { return t.numEntries }

// SizeBytes returns the table's logical size in bytes.
func (t *Table) SizeBytes() int64 { return t.sizeBytes }

// FilePages returns the on-device footprint in pages.
func (t *Table) FilePages() int64 { return t.filePages }

// FileName returns the backing file name.
func (t *Table) FileName() string { return t.fileName }

// Smallest returns the first (smallest) key.
func (t *Table) Smallest() []byte { return t.key(0) }

// Largest returns the last (largest) key.
func (t *Table) Largest() []byte { return t.key(t.numEntries - 1) }

func (t *Table) key(i int) []byte {
	return t.keyArena[t.keyOffsets[i]:t.keyOffsets[i+1]]
}

func (t *Table) entryAt(i int) kv.Entry {
	e := kv.Entry{
		Key:      t.key(i),
		ValueLen: int(t.vlens[i]),
		Seq:      t.seqs[i],
		Deleted:  t.dels[i] == 1,
	}
	if t.valOffsets != nil && t.dels[i] != 1 {
		e.Value = t.valArena[t.valOffsets[i]:t.valOffsets[i+1]]
	}
	return e
}

// search returns the index of the first entry with key >= target
// (open-coded binary search; this sits under every Get and probe).
func (t *Table) search(target []byte) int {
	return t.searchRange(0, t.numEntries, target)
}

// searchRange binary-searches [lo, hi) for the first key >= target,
// decomposing the target into comparison words once per search.
func (t *Table) searchRange(lo, hi int, target []byte) int {
	wHi, wLo, fast := kv.DecomposeKey(target)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		var c int
		if mk := t.key(mid); fast && len(mk) == kv.KeySize {
			c = kv.CompareKeyWords(mk, wHi, wLo)
		} else {
			c = kv.CompareKeys(mk, target)
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Overlaps reports whether the table's key range intersects [lo, hi]
// (inclusive). A nil bound is unbounded.
func (t *Table) Overlaps(lo, hi []byte) bool {
	if t.numEntries == 0 {
		return false
	}
	if hi != nil && kv.CompareKeys(t.Smallest(), hi) > 0 {
		return false
	}
	if lo != nil && kv.CompareKeys(t.Largest(), lo) < 0 {
		return false
	}
	return true
}

// MayContain consults the Bloom filter only (no I/O). In accounting mode
// the filter is materialized here, on the table's first probe, from the
// in-memory side index — its bits are a pure function of the key set, so
// the lazy build answers exactly like an eager one while write-only runs
// never pay for filters on tables that die unprobed.
func (t *Table) MayContain(key []byte) bool {
	if t.bloom == nil {
		bloom := NewBloom(t.numEntries)
		for i := 0; i < t.numEntries; i++ {
			bloom.Add(t.key(i))
		}
		t.bloom = bloom
	}
	return t.bloom.MayContain(key)
}

// Get looks up key, charging the device for the data-block read when the
// Bloom filter passes. found=false with no I/O charge is the fast
// negative path. In content mode the value is parsed from the block
// bytes; in accounting mode the value is nil (metadata only).
func (t *Table) Get(now sim.Duration, key []byte) (done sim.Duration, e kv.Entry, found bool, err error) {
	done = now
	if !t.MayContain(key) {
		return done, e, false, nil
	}
	i := t.search(key)
	if i >= t.numEntries || !bytes.Equal(t.key(i), key) {
		// Bloom false positive: a real engine would still read the
		// block to find out; charge that read.
		bi := t.blockOf(minInt(i, t.numEntries-1))
		b := t.blocks[bi]
		done, err = t.file.ReadAt(now, int64(b.startPage), int(b.pages), nil)
		return done, e, false, err
	}
	bi := t.blockOf(i)
	b := t.blocks[bi]
	var buf []byte
	if t.content {
		buf = make([]byte, int(b.pages)*t.pageSize)
	}
	done, err = t.file.ReadAt(now, int64(b.startPage), int(b.pages), buf)
	if err != nil {
		return done, e, false, err
	}
	e = t.entryAt(i)
	if t.content {
		v, perr := blockEntryValue(buf, i-int(b.firstEntry))
		if perr != nil {
			return done, e, false, perr
		}
		e.Value = v
	}
	return done, e, true, nil
}

// blockEntryValue walks a serialized data block and returns a copy of the
// value of the idx-th entry in it.
func blockEntryValue(block []byte, idx int) ([]byte, error) {
	off := 0
	for i := 0; ; i++ {
		if off+entryHeaderSize > len(block) {
			return nil, fmt.Errorf("sstable: corrupt block (entry %d beyond block end)", i)
		}
		kl := int(binary.LittleEndian.Uint16(block[off+1:]))
		vl := int(binary.LittleEndian.Uint32(block[off+3:]))
		if off+entryHeaderSize+kl+vl > len(block) {
			return nil, fmt.Errorf("sstable: corrupt block (entry %d overruns block)", i)
		}
		if i == idx {
			v := make([]byte, vl)
			copy(v, block[off+entryHeaderSize+kl:off+entryHeaderSize+kl+vl])
			return v, nil
		}
		off += entryHeaderSize + kl + vl
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// blockOf returns the index of the block containing entry i.
func (t *Table) blockOf(i int) int {
	lo, hi := 0, len(t.blocks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(t.blocks[mid].firstEntry) <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// ReadPages charges a bulk read of n file pages starting at pageOff,
// returning the completion time. Compaction jobs use it to account their
// input scans while iterating the in-memory side index.
func (t *Table) ReadPages(now sim.Duration, pageOff int64, n int) (sim.Duration, error) {
	return t.file.ReadAt(now, pageOff, n, nil)
}

// Iterator returns an in-memory iterator over all entries (metadata
// only; no I/O is charged — compaction jobs charge bulk reads
// explicitly).
func (t *Table) Iterator() kv.Iterator {
	return &tableIter{t: t, i: -1}
}

// IteratorFrom returns an iterator positioned before the first entry with
// key >= start.
func (t *Table) IteratorFrom(start []byte) kv.Iterator {
	return &tableIter{t: t, i: t.search(start) - 1}
}

// ReadRange charges the device reads for the data blocks covering entry
// indexes [first, last], at their real file offsets, and returns the
// completion time. Range scans use it to account their I/O.
func (t *Table) ReadRange(now sim.Duration, first, last int) (sim.Duration, error) {
	if t.numEntries == 0 || first > last || first >= t.numEntries {
		return now, nil
	}
	if last >= t.numEntries {
		last = t.numEntries - 1
	}
	b0 := t.blockOf(first)
	b1 := t.blockOf(last)
	start := t.blocks[b0].startPage
	var pages int32
	for b := b0; b <= b1; b++ {
		pages += t.blocks[b].pages
	}
	return t.file.ReadAt(now, int64(start), int(pages), nil)
}

// EntryIndex returns the index of the first entry with key >= target.
func (t *Table) EntryIndex(target []byte) int { return t.search(target) }

// KeyAt returns entry i's key (aliasing the table's arena; callers must
// not mutate or retain it past the table's lifetime).
func (t *Table) KeyAt(i int) []byte { return t.key(i) }

// SeqAt returns entry i's sequence number.
func (t *Table) SeqAt(i int) uint64 { return t.seqs[i] }

// SearchFrom returns the index of the first entry in [start, NumEntries)
// with key >= target — the galloping primitive of the bulk merge path.
func (t *Table) SearchFrom(start int, target []byte) int {
	return t.searchRange(start, t.numEntries, target)
}

type tableIter struct {
	t *Table
	i int
	e kv.Entry
}

func (it *tableIter) Next() bool {
	it.i++
	if it.i >= it.t.numEntries {
		return false
	}
	it.e = it.t.entryAt(it.i)
	return true
}

func (it *tableIter) Entry() *kv.Entry { return &it.e }
