package sstable

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

func newTestFS(t *testing.T, content bool) (*extfs.FS, *blockdev.Device) {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  64 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "sst-test",
			ReadFixed:  time.Microsecond,
			WriteFixed: time.Microsecond,
			ReadBW:     1 << 30,
			WriteBW:    1 << 30,
			HardwareOP: 0.25,
			EraseTime:  100 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.New(ssd)
	if content {
		dev.EnableContentStore()
	}
	fs, err := extfs.Mount(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

// buildTable builds and installs a table with the given entries.
func buildTable(t *testing.T, fs *extfs.FS, name string, content bool, entries []kv.Entry) *Table {
	t.Helper()
	b := NewBuilder(fs.PageSize(), DefaultBlockBytes, content)
	for i := range entries {
		if err := b.Add(&entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	img := b.Finish(1)
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Duration
	var written int64
	for {
		var done bool
		now, written, done, err = img.WriteChunk(now, f, written, 64)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	return img.Install(f)
}

func synthEntries(n int, valueLen int, content bool) []kv.Entry {
	entries := make([]kv.Entry, n)
	for i := 0; i < n; i++ {
		e := kv.Entry{
			Key:      kv.EncodeKey(uint64(i * 3)), // gaps for negative lookups
			ValueLen: valueLen,
			Seq:      uint64(1000 + i),
		}
		if content {
			e.Value = make([]byte, valueLen)
			kv.SynthValue(e.Value, e.Key, e.Seq)
		}
		entries[i] = e
	}
	return entries
}

func TestBuildAndGetAccountingMode(t *testing.T) {
	fs, _ := newTestFS(t, false)
	entries := synthEntries(500, 100, false)
	tbl := buildTable(t, fs, "sst-1", false, entries)
	if tbl.NumEntries() != 500 {
		t.Fatalf("NumEntries = %d", tbl.NumEntries())
	}
	done, e, found, err := tbl.Get(0, kv.EncodeKey(42*3))
	if err != nil || !found {
		t.Fatalf("Get: found=%v err=%v", found, err)
	}
	if e.Seq != 1000+42 || e.ValueLen != 100 {
		t.Fatalf("entry wrong: %+v", e)
	}
	if done == 0 {
		t.Fatal("positive Get must charge device time")
	}
}

func TestGetMissingKeyBloomNegative(t *testing.T) {
	fs, dev := newTestFS(t, false)
	entries := synthEntries(1000, 50, false)
	tbl := buildTable(t, fs, "sst-1", false, entries)
	readsBefore := dev.Counters().ReadOps
	misses := 0
	charged := 0
	for i := 0; i < 500; i++ {
		// Keys congruent to 1 mod 3 are absent.
		_, _, found, err := tbl.Get(0, kv.EncodeKey(uint64(i*3+1)))
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatal("found a key that was never inserted")
		}
		misses++
	}
	charged = int(dev.Counters().ReadOps - readsBefore)
	// With a 10-bits-per-key bloom filter, false positives should be
	// rare: expect well under 10% of misses to charge a block read.
	if charged > misses/10 {
		t.Fatalf("bloom filter ineffective: %d/%d misses read blocks", charged, misses)
	}
}

func TestContentModeRoundTrip(t *testing.T) {
	fs, _ := newTestFS(t, true)
	entries := synthEntries(300, 64, true)
	tbl := buildTable(t, fs, "sst-1", true, entries)
	for _, idx := range []int{0, 1, 150, 298, 299} {
		_, e, found, err := tbl.Get(0, entries[idx].Key)
		if err != nil || !found {
			t.Fatalf("Get idx %d: found=%v err=%v", idx, found, err)
		}
		if !bytes.Equal(e.Value, entries[idx].Value) {
			t.Fatalf("value mismatch at idx %d", idx)
		}
		if e.Seq != entries[idx].Seq {
			t.Fatalf("seq mismatch at idx %d", idx)
		}
	}
}

func TestOpenFromFile(t *testing.T) {
	fs, _ := newTestFS(t, true)
	entries := synthEntries(400, 48, true)
	tbl := buildTable(t, fs, "sst-1", true, entries)

	f, err := fs.Open("sst-1")
	if err != nil {
		t.Fatal(err)
	}
	reopened, _, err := OpenFromFile(f, fs.PageSize(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.NumEntries() != tbl.NumEntries() {
		t.Fatalf("reopened entries %d != %d", reopened.NumEntries(), tbl.NumEntries())
	}
	if !bytes.Equal(reopened.Smallest(), tbl.Smallest()) ||
		!bytes.Equal(reopened.Largest(), tbl.Largest()) {
		t.Fatal("key range mismatch after reopen")
	}
	// Values still readable through the reopened table.
	_, e, found, err := reopened.Get(0, entries[123].Key)
	if err != nil || !found {
		t.Fatalf("reopened Get: %v %v", found, err)
	}
	if !bytes.Equal(e.Value, entries[123].Value) {
		t.Fatal("reopened value mismatch")
	}
}

func TestIteratorFullScan(t *testing.T) {
	fs, _ := newTestFS(t, false)
	entries := synthEntries(777, 32, false)
	tbl := buildTable(t, fs, "sst-1", false, entries)
	it := tbl.Iterator()
	i := 0
	var prev []byte
	for it.Next() {
		e := it.Entry()
		if !bytes.Equal(e.Key, entries[i].Key) {
			t.Fatalf("key %d mismatch", i)
		}
		if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
			t.Fatal("iterator out of order")
		}
		prev = append(prev[:0], e.Key...)
		i++
	}
	if i != len(entries) {
		t.Fatalf("iterated %d, want %d", i, len(entries))
	}
}

func TestBuilderRejectsOutOfOrder(t *testing.T) {
	b := NewBuilder(4096, DefaultBlockBytes, false)
	if err := b.Add(&kv.Entry{Key: kv.EncodeKey(5), ValueLen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(&kv.Entry{Key: kv.EncodeKey(4), ValueLen: 1}); err == nil {
		t.Fatal("out-of-order Add should fail")
	}
	if err := b.Add(&kv.Entry{Key: kv.EncodeKey(5), ValueLen: 1}); err == nil {
		t.Fatal("duplicate Add should fail")
	}
}

func TestOverlaps(t *testing.T) {
	fs, _ := newTestFS(t, false)
	entries := synthEntries(100, 10, false) // keys 0,3,...,297
	tbl := buildTable(t, fs, "sst-1", false, entries)
	cases := []struct {
		lo, hi uint64
		want   bool
	}{
		{0, 5, true},
		{297, 400, true},
		{298, 400, false},
		{100, 200, true},
	}
	for _, c := range cases {
		got := tbl.Overlaps(kv.EncodeKey(c.lo), kv.EncodeKey(c.hi))
		if got != c.want {
			t.Fatalf("Overlaps(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	if !tbl.Overlaps(nil, nil) {
		t.Fatal("unbounded range must overlap")
	}
}

func TestTombstonesSurviveRoundTrip(t *testing.T) {
	fs, _ := newTestFS(t, true)
	entries := []kv.Entry{
		{Key: kv.EncodeKey(1), Value: []byte("live"), ValueLen: 4, Seq: 1},
		{Key: kv.EncodeKey(2), Value: []byte{}, ValueLen: 0, Seq: 2, Deleted: true},
		{Key: kv.EncodeKey(3), Value: []byte("also"), ValueLen: 4, Seq: 3},
	}
	tbl := buildTable(t, fs, "sst-1", true, entries)
	_, e, found, err := tbl.Get(0, kv.EncodeKey(2))
	if err != nil || !found {
		t.Fatalf("tombstone lookup: %v %v", found, err)
	}
	if !e.Deleted {
		t.Fatal("tombstone flag lost")
	}
	f, _ := fs.Open("sst-1")
	re, _, err := OpenFromFile(f, fs.PageSize(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, e2, found, err := re.Get(0, kv.EncodeKey(2))
	if err != nil || !found || !e2.Deleted {
		t.Fatal("tombstone lost after reopen")
	}
}

func TestSizeAccountingConsistency(t *testing.T) {
	// Logical size must be identical in content and accounting modes.
	build := func(content bool) (int64, int64) {
		b := NewBuilder(4096, DefaultBlockBytes, content)
		for _, e := range synthEntries(250, 123, content) {
			if err := b.Add(&e); err != nil {
				t.Fatal(err)
			}
		}
		img := b.Finish(7)
		return img.SizeBytes, img.Pages
	}
	sizeA, pagesA := build(false)
	sizeC, pagesC := build(true)
	if sizeA != sizeC || pagesA != pagesC {
		t.Fatalf("mode-dependent sizes: acct %d/%d, content %d/%d",
			sizeA, pagesA, sizeC, pagesC)
	}
}

func TestChunkedWriteMatchesWholeWrite(t *testing.T) {
	fs, dev := newTestFS(t, false)
	entries := synthEntries(2000, 200, false)
	b := NewBuilder(fs.PageSize(), DefaultBlockBytes, false)
	for i := range entries {
		if err := b.Add(&entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	img := b.Finish(1)
	f, _ := fs.Create("sst")
	var now sim.Duration
	var written int64
	steps := 0
	for {
		var done bool
		var err error
		now, written, done, err = img.WriteChunk(now, f, written, 8)
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
	}
	if steps < 2 {
		t.Fatal("expected multiple chunks")
	}
	if got := f.SizePages(); got != img.Pages {
		t.Fatalf("file pages %d != image pages %d", got, img.Pages)
	}
	if got := f.SizeBytes(); got != img.SizeBytes {
		t.Fatalf("file bytes %d != image bytes %d", got, img.SizeBytes)
	}
	wantBytes := img.Pages * int64(fs.PageSize())
	if got := dev.Counters().BytesWritten; got != wantBytes {
		t.Fatalf("device wrote %d, want %d", got, wantBytes)
	}
}

func TestEmptyTable(t *testing.T) {
	fs, _ := newTestFS(t, false)
	tbl := buildTable(t, fs, "sst-empty", false, nil)
	if tbl.NumEntries() != 0 {
		t.Fatal("empty table should have 0 entries")
	}
	if tbl.Overlaps(nil, nil) {
		t.Fatal("empty table overlaps nothing")
	}
	_, _, found, err := tbl.Get(0, kv.EncodeKey(1))
	if err != nil || found {
		t.Fatalf("empty Get: %v %v", found, err)
	}
}

func TestBlockSpanningEntries(t *testing.T) {
	// Values larger than the block target: one entry per block.
	fs, _ := newTestFS(t, true)
	entries := synthEntries(10, DefaultBlockBytes*2, true)
	tbl := buildTable(t, fs, "sst-big", true, entries)
	if len(tbl.blocks) != 10 {
		t.Fatalf("expected 10 single-entry blocks, got %d", len(tbl.blocks))
	}
	for i := range entries {
		_, e, found, err := tbl.Get(0, entries[i].Key)
		if err != nil || !found {
			t.Fatalf("big entry %d: %v %v", i, found, err)
		}
		if !bytes.Equal(e.Value, entries[i].Value) {
			t.Fatalf("big value %d mismatch", i)
		}
	}
}

// Property: Get finds exactly the inserted keys for random key sets.
func TestTableLookupProperty(t *testing.T) {
	fs, _ := newTestFS(t, false)
	id := 0
	f := func(rawIDs []uint32) bool {
		id++
		// Dedup and sort.
		seen := map[uint64]bool{}
		var ids []uint64
		for _, r := range rawIDs {
			v := uint64(r % 10000)
			if !seen[v] {
				seen[v] = true
				ids = append(ids, v)
			}
		}
		if len(ids) == 0 {
			return true
		}
		sortUint64(ids)
		entries := make([]kv.Entry, len(ids))
		for i, kid := range ids {
			entries[i] = kv.Entry{Key: kv.EncodeKey(kid), ValueLen: 10, Seq: uint64(i)}
		}
		name := "sst-prop-" + string(rune('a'+id%26)) + string(rune('0'+id/26%10)) + string(rune('0'+id%10))
		tbl := buildTable(t, fs, name, false, entries)
		for _, kid := range ids {
			_, _, found, err := tbl.Get(0, kv.EncodeKey(kid))
			if err != nil || !found {
				return false
			}
		}
		// A key beyond the max must not be found.
		_, _, found, _ := tbl.Get(0, kv.EncodeKey(10001))
		return !found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestBloomFilterBasics(t *testing.T) {
	b := NewBloom(100)
	for i := 0; i < 100; i++ {
		b.Add(kv.EncodeKey(uint64(i)))
	}
	for i := 0; i < 100; i++ {
		if !b.MayContain(kv.EncodeKey(uint64(i))) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	fp := 0
	for i := 100; i < 1100; i++ {
		if b.MayContain(kv.EncodeKey(uint64(i))) {
			fp++
		}
	}
	if fp > 50 { // ~1% expected at 10 bits/key; 5% is a generous bound
		t.Fatalf("false positive rate too high: %d/1000", fp)
	}
}

func TestBloomEncodeDecode(t *testing.T) {
	b := NewBloom(50)
	for i := 0; i < 50; i++ {
		b.Add(kv.EncodeKey(uint64(i * 7)))
	}
	enc := b.encode()
	d, ok := decodeBloom(enc)
	if !ok {
		t.Fatal("decode failed")
	}
	for i := 0; i < 50; i++ {
		if !d.MayContain(kv.EncodeKey(uint64(i * 7))) {
			t.Fatal("decoded filter lost a key")
		}
	}
	if _, ok := decodeBloom([]byte{1, 2}); ok {
		t.Fatal("short buffer should fail decode")
	}
}

func TestEncodedEntrySize(t *testing.T) {
	e := kv.Entry{Key: kv.EncodeKey(1), Value: make([]byte, 100)}
	if got := EncodedEntrySize(&e); got != entryHeaderSize+16+100 {
		t.Fatalf("EncodedEntrySize = %d", got)
	}
	e2 := kv.Entry{Key: kv.EncodeKey(1), ValueLen: 200}
	if got := EncodedEntrySize(&e2); got != entryHeaderSize+16+200 {
		t.Fatalf("EncodedEntrySize accounting mode = %d", got)
	}
}
