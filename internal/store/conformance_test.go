package store_test

import (
	"testing"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/engine"
	_ "ptsbench/internal/engine/all"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kvtest"
	"ptsbench/internal/sim"
	"ptsbench/internal/store"
)

// shardParts keeps the pieces of one shard's stack that outlive the
// engine: recovery needs the filesystem and sized config back.
type shardParts struct {
	dev *blockdev.Device
	fs  *extfs.FS
	cfg engine.Config
}

// openShardStack builds one shard's full simulated stack (flash device,
// block device, filesystem, engine) through the driver registry, the
// way core.Run builds per-shard stacks.
func openShardStack(t *testing.T, drv engine.Driver, content bool, tunables map[string]string, rngSeed uint64) (store.Stack, shardParts) {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  32 << 20,
		PageSize:      4096,
		PagesPerBlock: 64,
		Profile:       flash.ProfileSSD1().Scaled(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.New(ssd)
	if content {
		dev.EnableContentStore()
	}
	fs, err := extfs.Mount(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := drv.Configure(engine.Sizing{DatasetBytes: 16 << 20})
	if err := cfg.ApplyTunables(tunables); err != nil {
		t.Fatal(err)
	}
	eng, err := cfg.Open(engine.Env{FS: fs, RNG: sim.NewRNG(rngSeed), Content: content})
	if err != nil {
		t.Fatal(err)
	}
	return store.Stack{Engine: eng, Dev: dev}, shardParts{dev: dev, fs: fs, cfg: cfg}
}

// shardedFactory adapts an N-shard store to the engine-conformance
// suite through the Sync facade, holding the sharded front end to the
// exact behavioural contract of a single engine — scans merge in key
// order across shards, recovery reopens every shard, replay is
// deterministic.
func shardedFactory(engName string, shards int, tunables map[string]string) kvtest.Factory {
	return func(t *testing.T, content bool) *kvtest.Stack {
		drv, err := engine.Lookup(engName)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]shardParts, shards)
		st, err := store.New(shards, func(i int) (store.Stack, error) {
			stack, p := openShardStack(t, drv, content, tunables, uint64(100+i))
			parts[i] = p
			return stack, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		return &kvtest.Stack{
			Engine: &store.Sync{S: st},
			Dev:    parts[0].dev,
			Reopen: func(now sim.Duration) (kvtest.Engine, sim.Duration, error) {
				st.Close()
				engs := make([]engine.Engine, shards)
				starts := make([]sim.Duration, shards)
				var end sim.Duration
				for i := range parts {
					re, rnow, err := parts[i].cfg.Recover(engine.Env{
						FS:      parts[i].fs,
						RNG:     sim.NewRNG(uint64(200 + i)),
						Content: content,
					}, now)
					if err != nil {
						return nil, rnow, err
					}
					engs[i], starts[i] = re, rnow
					if rnow > end {
						end = rnow
					}
				}
				rst, err := store.New(shards, func(i int) (store.Stack, error) {
					return store.Stack{Engine: engs[i], Dev: parts[i].dev, Start: starts[i]}, nil
				})
				if err != nil {
					return nil, 0, err
				}
				t.Cleanup(rst.Close)
				return &store.Sync{S: rst}, end, nil
			},
		}
	}
}

// TestShardedConformance runs the shared engine-conformance suite over
// the sharded serving layer: a 1-shard store (the bit-identical legacy
// shape) and 4-shard stores over two engine families.
func TestShardedConformance(t *testing.T) {
	cases := []struct {
		name     string
		eng      string
		shards   int
		tunables map[string]string
	}{
		// journal_sync: the suite asserts per-operation durability
		// across a crash; small leaves so splits participate.
		{"btree-1shard", "btree", 1, map[string]string{"journal_sync": "true", "leaf_page_bytes": "2048"}},
		{"btree-4shards", "btree", 4, map[string]string{"journal_sync": "true", "leaf_page_bytes": "2048"}},
		// Small memtables so flushed tables participate; fully-synced
		// WAL for the same durability reason.
		{"lsm-4shards", "lsm", 4, map[string]string{"memtable_bytes": "16384", "wal_flush_bytes": "0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kvtest.Run(t, shardedFactory(tc.eng, tc.shards, tc.tunables))
		})
	}
}
