package store

// Degraded-path policy: what a shard does when its engine returns an
// error instead of panicking. The taxonomy follows internal/deverr:
//
//   - TRANSIENT errors (a device EIO that may succeed on retry) are
//     retried on the shard's virtual clock under a capped exponential
//     backoff, bounded per op and per pump round, so an error burst
//     degrades throughput instead of failing acknowledged work.
//   - PERSISTENT errors attributed to one replica of a replica group
//     (replica.MemberError, matched structurally) fail that replica out
//     of the group — when the group can afford the loss — and the op
//     retries against the degraded group. Mutations are idempotent
//     last-writer-wins KV ops, so the re-apply is safe.
//   - Anything else latches the shard into UNAVAILABLE mode: the op and
//     every later one complete with a typed *Unavailable error until
//     the caller repairs the stack and calls ClearFailure. Loud refusal
//     beats silently serving a shard whose engine is known-broken.
//
// All of it is deterministic: backoff delays are fixed virtual-time
// constants, retry budgets are plain counters, and no wall clock or
// extra randomness is consulted.

import (
	"errors"
	"fmt"

	"ptsbench/internal/deverr"
	"ptsbench/internal/sim"
)

// Retry policy constants (virtual time).
const (
	// retryBase is the first backoff delay after a transient error.
	retryBase = sim.Duration(100_000) // 100µs
	// retryCap bounds the exponential backoff.
	retryCap = sim.Duration(3_200_000) // 3.2ms
	// retryAttempts bounds retries per operation.
	retryAttempts = 6
	// retryBudget bounds retries per shard per pump round, so a storm
	// of transient errors cannot stall a batch unboundedly.
	retryBudget = 64
)

// Unavailable is the sticky typed error a shard serves once its engine
// has failed persistently and no failover could absorb it. Callers
// detect it with IsUnavailable (or errors.As) and reach the root cause
// through Unwrap.
type Unavailable struct {
	Shard int
	Cause error
}

// Error implements error.
func (u *Unavailable) Error() string {
	return fmt.Sprintf("store: shard %d unavailable: %v", u.Shard, u.Cause)
}

// Unwrap exposes the latching failure.
func (u *Unavailable) Unwrap() error { return u.Cause }

// IsUnavailable reports whether err (or anything it wraps) marks a
// shard in unavailable mode.
func IsUnavailable(err error) bool {
	var u *Unavailable
	return errors.As(err, &u)
}

// ErrorStats counts the serving layer's degraded-path events, summed
// over shards by (*Store).ErrorStats.
type ErrorStats struct {
	Transient   int64 // transient engine/device errors observed
	Persistent  int64 // persistent errors observed
	Retries     int64 // op retries issued after transient errors
	Failovers   int64 // replicas auto-failed out of their groups
	Unavailable int64 // ops refused because the shard was unavailable
}

// Add returns a+b field-wise.
func (a ErrorStats) Add(b ErrorStats) ErrorStats {
	a.Transient += b.Transient
	a.Persistent += b.Persistent
	a.Retries += b.Retries
	a.Failovers += b.Failovers
	a.Unavailable += b.Unavailable
	return a
}

// ErrorStats aggregates degraded-path counters over shards. Like the
// other aggregators it must only be called between Pump rounds.
func (s *Store) ErrorStats() ErrorStats {
	var t ErrorStats
	for _, sh := range s.shards {
		t = t.Add(sh.errStats)
	}
	return t
}

// Failover is the optional engine surface behind automatic replica
// failover (replica.Group implements it). Live and MinLive bound the
// decision: a replica is only killed while the group stays serviceable
// without it.
type Failover interface {
	Kill(i int) error
	Live() int
	MinLive() int
}

// failOver tries to fail the replica named by a persistent
// member-attributed error out of the shard's group, reporting whether
// the op is worth retrying on the degraded group.
func (sh *shard) failOver(err error) bool {
	if !sh.autoFailover || deverr.IsTransient(err) {
		return false
	}
	var me interface{ MemberIndex() int }
	if !errors.As(err, &me) {
		return false
	}
	fo, ok := sh.eng.(Failover)
	if !ok || fo.Live() <= fo.MinLive() {
		return false
	}
	if fo.Kill(me.MemberIndex()) != nil {
		return false
	}
	sh.errStats.Failovers++
	return true
}

// redo drives one failed operation through the retry/failover policy.
// done/err are the first attempt's results; the returned values replace
// them. Backoff delays accrue on the shard's virtual clock via the
// retried op's start time.
func (sh *shard) redo(r request, done sim.Duration, err error) (sim.Duration, []byte, bool, error) {
	backoff := retryBase
	attempts := 0
	for {
		var v []byte
		var found bool
		if deverr.IsTransient(err) {
			sh.errStats.Transient++
			if attempts >= retryAttempts || sh.retryLeft <= 0 {
				return done, nil, false, err
			}
			attempts++
			sh.retryLeft--
			sh.errStats.Retries++
			at := maxDur(done, sh.clock) + backoff
			if backoff < retryCap {
				backoff *= 2
			}
			done, v, found, err = sh.runOp(r, at)
		} else {
			sh.errStats.Persistent++
			if !sh.failOver(err) {
				return done, nil, false, err
			}
			done, v, found, err = sh.runOp(r, maxDur(done, sh.clock))
		}
		if err == nil {
			return done, v, found, nil
		}
	}
}

// fail classifies an operation's terminal error: transient errors pass
// through and the shard keeps serving; anything persistent latches the
// shard into unavailable mode, so every later operation completes with
// the same typed error until ClearFailure.
func (sh *shard) fail(err error) error {
	if deverr.IsTransient(err) {
		return err
	}
	if sh.failed == nil {
		sh.failed = &Unavailable{Shard: sh.idx, Cause: err}
	}
	return sh.failed
}
