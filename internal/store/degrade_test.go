package store_test

// Degraded-path tests over a scripted fake engine: transient errors
// retry with deterministic virtual-time backoff, persistent
// member-attributed errors fail the replica over when the group can
// afford it, everything else latches the shard unavailable until
// ClearFailure, and every event is counted in ErrorStats.

import (
	"errors"
	"fmt"
	"testing"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/deverr"
	"ptsbench/internal/engine"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
	"ptsbench/internal/store"
)

// fakeMemberErr is a persistent error attributed to one replica of a
// group, matching the structural surface failover looks for.
type fakeMemberErr struct{ idx int }

func (e *fakeMemberErr) Error() string    { return fmt.Sprintf("member %d: disk on fire", e.idx) }
func (e *fakeMemberErr) MemberIndex() int { return e.idx }

// scriptedEngine serves every op in a fixed cost and pops one scripted
// verdict per op (nil = success). When failover is enabled it also
// implements the store.Failover surface.
type scriptedEngine struct {
	verdicts []error
	ops      int
	cost     sim.Duration

	failover bool
	live     int
	minLive  int
	killed   []int
}

func (f *scriptedEngine) pop() error {
	f.ops++
	if len(f.verdicts) == 0 {
		return nil
	}
	v := f.verdicts[0]
	f.verdicts = f.verdicts[1:]
	return v
}

func (f *scriptedEngine) Put(now sim.Duration, key, value []byte, valueLen int) (sim.Duration, error) {
	if err := f.pop(); err != nil {
		return now, err
	}
	return now + f.cost, nil
}

func (f *scriptedEngine) Get(now sim.Duration, key []byte) (sim.Duration, []byte, bool, error) {
	if err := f.pop(); err != nil {
		return now, nil, false, err
	}
	return now + f.cost, nil, true, nil
}

func (f *scriptedEngine) FlushAll(now sim.Duration) (sim.Duration, error) { return now, nil }
func (f *scriptedEngine) Stats() kv.EngineStats                           { return kv.EngineStats{} }
func (f *scriptedEngine) DiskUsageBytes() int64                           { return 0 }
func (f *scriptedEngine) Quiesce(now sim.Duration) sim.Duration           { return now }
func (f *scriptedEngine) Close(now sim.Duration) (sim.Duration, error)    { return now, nil }

func (f *scriptedEngine) Kill(i int) error {
	if !f.failover {
		return errors.New("no failover")
	}
	f.killed = append(f.killed, i)
	f.live--
	return nil
}
func (f *scriptedEngine) Live() int    { return f.live }
func (f *scriptedEngine) MinLive() int { return f.minLive }

var _ engine.Engine = (*scriptedEngine)(nil)
var _ store.Failover = (*scriptedEngine)(nil)

func newDegradeStore(t *testing.T, eng *scriptedEngine, autoFailover bool) *store.Store {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  1 << 20,
		PageSize:      4096,
		PagesPerBlock: 64,
		Profile:       flash.ProfileSSD1().Scaled(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(1, func(int) (store.Stack, error) {
		return store.Stack{Engine: eng, Dev: blockdev.New(ssd), AutoFailover: autoFailover}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func oneGet(st *store.Store, submit sim.Duration) store.Completion {
	st.Submit(store.Op{Kind: store.Get, KeyID: 1, Key: kv.EncodeKey(1), Submit: submit})
	return st.Pump()[0]
}

func transientEIO() error {
	return &deverr.Error{Op: deverr.OpRead, LBA: 4, Kind: deverr.KindEIO, Transient: true}
}

// TestDegradeRetryBackoff: transient errors retry on the virtual clock
// with the documented capped exponential backoff, succeed, and count.
func TestDegradeRetryBackoff(t *testing.T) {
	eng := &scriptedEngine{verdicts: []error{transientEIO(), transientEIO()}, cost: 10}
	st := newDegradeStore(t, eng, false)
	c := oneGet(st, 0)
	if c.Err != nil {
		t.Fatalf("retries should have absorbed the transient errors: %v", c.Err)
	}
	// Two failed attempts back off 100µs then 200µs; the third attempt
	// succeeds at its fixed cost.
	want := sim.Duration(100_000 + 200_000 + 10)
	if c.Done != want {
		t.Fatalf("completion time %d, want %d (deterministic backoff)", c.Done, want)
	}
	es := st.ErrorStats()
	if es.Transient != 2 || es.Retries != 2 || es.Persistent != 0 || es.Unavailable != 0 {
		t.Fatalf("stats wrong: %+v", es)
	}
}

// TestDegradeRetryExhaustion: an op out of retry budget surfaces the
// transient error WITHOUT latching the shard — the next op serves.
func TestDegradeRetryExhaustion(t *testing.T) {
	verdicts := make([]error, 0, 8)
	for i := 0; i < 8; i++ {
		verdicts = append(verdicts, transientEIO())
	}
	eng := &scriptedEngine{verdicts: verdicts, cost: 10}
	st := newDegradeStore(t, eng, false)
	c := oneGet(st, 0)
	if c.Err == nil || !deverr.IsTransient(c.Err) {
		t.Fatalf("exhausted op should surface its transient error, got %v", c.Err)
	}
	if store.IsUnavailable(c.Err) {
		t.Fatal("a transient failure must not latch the shard")
	}
	es := st.ErrorStats()
	if es.Retries != 6 {
		t.Fatalf("per-op retries should stop at 6, got %+v", es)
	}
	if c2 := oneGet(st, c.Done); c2.Err != nil {
		t.Fatalf("shard should keep serving after a transient give-up: %v", c2.Err)
	}
}

// TestDegradeUnavailableLatch: a persistent error latches the shard;
// every later op refuses with the same typed error until ClearFailure.
func TestDegradeUnavailableLatch(t *testing.T) {
	persistent := &deverr.Error{Op: deverr.OpRead, LBA: 9, Kind: deverr.KindLatent}
	eng := &scriptedEngine{verdicts: []error{persistent}, cost: 10}
	st := newDegradeStore(t, eng, false)
	c := oneGet(st, 0)
	if !store.IsUnavailable(c.Err) {
		t.Fatalf("persistent error should latch unavailable, got %v", c.Err)
	}
	if !errors.Is(c.Err, persistent) {
		t.Fatal("the latching cause must stay reachable through Unwrap")
	}
	c2 := oneGet(st, c.Done)
	if !store.IsUnavailable(c2.Err) {
		t.Fatalf("latched shard served an op: %v", c2.Err)
	}
	es := st.ErrorStats()
	if es.Persistent != 1 || es.Unavailable != 1 {
		t.Fatalf("stats wrong: %+v", es)
	}
	if err := st.ClearFailure(0); err != nil {
		t.Fatal(err)
	}
	if c3 := oneGet(st, c2.Done); c3.Err != nil {
		t.Fatalf("cleared shard should serve: %v", c3.Err)
	}
}

// TestClearFailureValidates: out-of-range shard indexes error instead
// of panicking.
func TestClearFailureValidates(t *testing.T) {
	st := newDegradeStore(t, &scriptedEngine{cost: 10}, false)
	for _, i := range []int{-1, 1, 99} {
		if err := st.ClearFailure(i); err == nil {
			t.Errorf("ClearFailure(%d) should error", i)
		}
	}
	if err := st.ClearFailure(0); err != nil {
		t.Fatal(err)
	}
}

// TestDegradeAutoFailover: a persistent member-attributed error fails
// the replica out of the group and the op retries successfully.
func TestDegradeAutoFailover(t *testing.T) {
	eng := &scriptedEngine{
		verdicts: []error{&fakeMemberErr{idx: 1}},
		cost:     10, failover: true, live: 2, minLive: 1,
	}
	st := newDegradeStore(t, eng, true)
	c := oneGet(st, 0)
	if c.Err != nil {
		t.Fatalf("failover should have absorbed the member error: %v", c.Err)
	}
	if len(eng.killed) != 1 || eng.killed[0] != 1 {
		t.Fatalf("replica 1 should have been killed, got %v", eng.killed)
	}
	es := st.ErrorStats()
	if es.Failovers != 1 || es.Persistent != 1 {
		t.Fatalf("stats wrong: %+v", es)
	}
}

// TestDegradeFailoverRespectsQuorum: with the group already at its
// minimum live count, the member error latches instead of killing the
// last copies.
func TestDegradeFailoverRespectsQuorum(t *testing.T) {
	eng := &scriptedEngine{
		verdicts: []error{&fakeMemberErr{idx: 0}},
		cost:     10, failover: true, live: 1, minLive: 1,
	}
	st := newDegradeStore(t, eng, true)
	c := oneGet(st, 0)
	if !store.IsUnavailable(c.Err) {
		t.Fatalf("group at MinLive must latch, got %v", c.Err)
	}
	if len(eng.killed) != 0 {
		t.Fatalf("no replica should have been killed, got %v", eng.killed)
	}
}

// TestDegradeFailoverOptIn: without AutoFailover the same member error
// latches the shard — harnesses that orchestrate failover themselves
// keep exclusive control.
func TestDegradeFailoverOptIn(t *testing.T) {
	eng := &scriptedEngine{
		verdicts: []error{&fakeMemberErr{idx: 1}},
		cost:     10, failover: true, live: 2, minLive: 1,
	}
	st := newDegradeStore(t, eng, false)
	c := oneGet(st, 0)
	if !store.IsUnavailable(c.Err) {
		t.Fatalf("AutoFailover off must latch, got %v", c.Err)
	}
	if len(eng.killed) != 0 {
		t.Fatalf("no replica should have been killed, got %v", eng.killed)
	}
}

// TestDegradeLatchedNotRetried: an engine that latched a transient
// cause (deverr.Latched) is permanently broken — the store must treat
// it as persistent, not burn its retry budget on a dead engine.
func TestDegradeLatchedNotRetried(t *testing.T) {
	latched := deverr.Latch(transientEIO())
	eng := &scriptedEngine{verdicts: []error{latched}, cost: 10}
	st := newDegradeStore(t, eng, false)
	c := oneGet(st, 0)
	if !store.IsUnavailable(c.Err) {
		t.Fatalf("latched error should latch the shard, got %v", c.Err)
	}
	es := st.ErrorStats()
	if es.Retries != 0 || es.Persistent != 1 {
		t.Fatalf("latched error must not be retried: %+v", es)
	}
}

// TestDegradeDeterminism: the same scripted error sequence produces the
// same completion times and stats.
func TestDegradeDeterminism(t *testing.T) {
	run := func() (sim.Duration, store.ErrorStats) {
		eng := &scriptedEngine{
			verdicts: []error{transientEIO(), transientEIO(), transientEIO()},
			cost:     10,
		}
		st := newDegradeStore(t, eng, false)
		c := oneGet(st, 0)
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		return c.Done, st.ErrorStats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("degraded path diverged: %d %+v vs %d %+v", d1, s1, d2, s2)
	}
}
