package store_test

import (
	"fmt"
	"testing"

	"ptsbench/internal/engine"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
	"ptsbench/internal/store"
)

// journalSyncCounter is the optional engine surface the cowtree family
// exposes for observing journal sync batching.
type journalSyncCounter interface {
	JournalSyncCount() int64
}

// TestGroupCommitSingleSync asserts the group-commit contract end to
// end: a multi-write intake batch on one shard costs exactly ONE
// journal sync (the shared EndGroupCommit sync), not one per write.
func TestGroupCommitSingleSync(t *testing.T) {
	for _, engName := range []string{"btree", "betree"} {
		t.Run(engName, func(t *testing.T) {
			drv, err := engine.Lookup(engName)
			if err != nil {
				t.Fatal(err)
			}
			stack, _ := openShardStack(t, drv, false,
				map[string]string{"journal_sync": "true"}, 42)
			jc, ok := stack.Engine.(journalSyncCounter)
			if !ok {
				t.Fatalf("%s engine does not expose JournalSyncCount", engName)
			}
			st, err := store.New(1, func(i int) (store.Stack, error) { return stack, nil })
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			// A batch of 8 puts lands as one intake on the single shard.
			before := jc.JournalSyncCount()
			for i := 0; i < 8; i++ {
				st.Submit(store.Op{
					Kind:   store.Put,
					Submit: sim.Duration(i+1) * 1000,
					KeyID:  uint64(i),
					Key:    kv.EncodeKey(uint64(i)),
					Value:  []byte(fmt.Sprintf("val-%d", i)),
				})
			}
			for _, c := range st.Pump() {
				if c.Err != nil {
					t.Fatal(c.Err)
				}
			}
			if got := jc.JournalSyncCount() - before; got != 1 {
				t.Fatalf("multi-write intake cost %d journal syncs, want exactly 1", got)
			}

			// A single-write intake syncs on the put itself (no group
			// bracket), still exactly once.
			before = jc.JournalSyncCount()
			st.Submit(store.Op{
				Kind:   store.Put,
				Submit: 100000,
				KeyID:  99,
				Key:    kv.EncodeKey(99),
				Value:  []byte("solo"),
			})
			for _, c := range st.Pump() {
				if c.Err != nil {
					t.Fatal(c.Err)
				}
			}
			if got := jc.JournalSyncCount() - before; got != 1 {
				t.Fatalf("single-write intake cost %d journal syncs, want exactly 1", got)
			}
		})
	}
}
