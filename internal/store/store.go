// Package store is the serving layer between an experiment's
// closed-loop clients and the storage engines: an asynchronous
// submit/complete pipeline over N hash-partitioned shards, each shard
// owning one engine instance on its own simulated device stack.
//
// The dispatch discipline mirrors sim.MultiResource — a shared
// submission queue feeding independent FIFO service lanes — lifted from
// flash dies to whole engine instances: clients Submit operations with
// virtual submission times, Pump routes each to its owning shard, and
// every shard services its intake in (submit time, submission order)
// order on its own clock. Shards never share mutable simulation state
// (each has its own flash device, block device, filesystem and engine),
// so shard workers run on real goroutines while results stay
// deterministic: the only cross-goroutine communication is the
// barrier at the end of Pump, and completions are merged back into
// global submission order.
//
// Determinism contract: a 1-shard store is bit-identical to driving the
// engine directly (there is no worker goroutine and no reordering), and
// any (shards × clients) shape replays exactly given the same
// submission sequence. Consecutive same-client Get submissions with
// equal submit times form a read wave: all start together on the owning
// shard and the shard clock advances to the slowest completion,
// reproducing the harness's QueueDepth batching. Intake batches
// carrying more than one write are bracketed with the engine's optional
// group commit (engine.GroupCommitter), so concurrent clients share one
// journal sync.
package store

import (
	"fmt"
	"sort"
	"sync"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/deverr"
	"ptsbench/internal/engine"
	"ptsbench/internal/faultdev"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// OpKind enumerates the operations the serving layer accepts.
type OpKind uint8

// Operation kinds.
const (
	Get OpKind = iota
	Put
	Delete
)

// Op is one submitted operation. KeyID routes the op to its shard
// (ShardOf); Key is the encoded key handed to the engine and must stay
// valid until the Pump that services it returns. Wave marks a member of
// a concurrent read wave (see the package comment).
type Op struct {
	Kind     OpKind
	Client   int
	Submit   sim.Duration
	KeyID    uint64
	Key      []byte
	Value    []byte
	ValueLen int
	Wave     bool
}

// Completion reports one serviced operation. Seq is the global
// submission order; Done is the virtual completion time (for group-
// committed writes, the group's journal sync time). After an error on a
// shard, later operations of the same Pump on that shard complete with
// the same error without reaching the engine.
type Completion struct {
	Seq    uint64
	Client int
	Kind   OpKind
	Wave   bool
	Submit sim.Duration
	Done   sim.Duration
	Value  []byte
	Found  bool
	Err    error
}

// Deleter is the optional engine surface behind Op Delete.
type Deleter interface {
	Delete(now sim.Duration, key []byte) (sim.Duration, error)
}

// Scanner is the optional engine surface behind Store.Scan.
type Scanner interface {
	Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error)
}

// Stack is one shard's engine on its own simulated device. Start seeds
// the shard clock (recovery end time for recovered engines). Fault,
// when set, is the shard's fault-injecting device wrapper (the crash
// harness polls it for power cuts between pump rounds).
//
// A replicated shard (a replica.Group behind Engine) owns one device
// per replica: Devs/Faults then carry ALL of them in replica order
// (Dev/Fault stay the first replica's for compatibility), so device
// instrumentation and cut polling see every underlying device.
type Stack struct {
	Engine engine.Engine
	Dev    blockdev.Host
	Fault  *faultdev.Dev
	Start  sim.Duration
	// Devs, when set, lists every device backing the shard (replica
	// groups). When nil the shard has the single device Dev.
	Devs []blockdev.Host
	// Faults, when set, lists every fault wrapper backing the shard in
	// the same order as Devs (entries may be nil).
	Faults []*faultdev.Dev
	// AutoFailover lets the shard fail a persistently erroring replica
	// out of its group (the engine must implement Failover) instead of
	// latching the shard unavailable. Off by default: harnesses that
	// orchestrate failover themselves keep exclusive control.
	AutoFailover bool
}

// request is an Op tagged with its global submission number.
type request struct {
	seq uint64
	op  Op
}

type shard struct {
	idx    int
	eng    engine.Engine
	dev    blockdev.Host
	fault  *faultdev.Dev
	devs   []blockdev.Host // all backing devices (replicated shards)
	faults []*faultdev.Dev // all fault wrappers, aligned with devs
	clock  sim.Duration
	failed error // sticky: set on the first persistent engine error

	autoFailover bool       // fail erroring replicas out of the group
	retryLeft    int        // transient-retry budget for this pump round
	errStats     ErrorStats // degraded-path counters

	intake   []request // reused across Pumps
	unsorted bool      // intake submit times observed out of order
	comps    []Completion

	// Worker plumbing (multi-shard stores only). The worker goroutine
	// executes closures sent on ch; the store's WaitGroup is the
	// barrier, so the main goroutine never touches shard state while a
	// closure runs.
	ch chan func()

	err error // scratch for lifecycle operations (Load, FlushAll, Scan)
}

// run executes closures off ch. The channel is passed by value so
// Close never writes a field the worker goroutine reads.
func (sh *shard) run(ch chan func()) {
	for f := range ch {
		f()
	}
}

// Store is the sharded serving layer.
type Store struct {
	shards  []*shard
	seq     uint64
	pending int
	comps   []Completion // reused result buffer for Pump
	wg      sync.WaitGroup
	closed  bool
}

// New builds a store over shards hash-partitioned engine stacks. open
// is called with shard indices 0..shards-1 in order; shard 0's stack is
// built first, so callers can give it the experiment's primary RNG
// stream and keep single-shard runs bit-identical to historical ones.
// Multi-shard stores start one worker goroutine per shard; Close stops
// them.
func New(shards int, open func(i int) (Stack, error)) (*Store, error) {
	if shards < 1 {
		return nil, fmt.Errorf("store: shards must be >= 1 (got %d)", shards)
	}
	s := &Store{shards: make([]*shard, 0, shards)}
	for i := 0; i < shards; i++ {
		st, err := open(i)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("store: opening shard %d: %w", i, err)
		}
		sh := &shard{
			idx: i, eng: st.Engine, dev: st.Dev, fault: st.Fault,
			devs: st.Devs, faults: st.Faults, clock: st.Start,
			autoFailover: st.AutoFailover,
		}
		if sh.devs == nil {
			sh.devs = []blockdev.Host{st.Dev}
		}
		if sh.faults == nil {
			sh.faults = []*faultdev.Dev{st.Fault}
		}
		if shards > 1 {
			sh.ch = make(chan func(), 1)
			go sh.run(sh.ch)
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// Close stops the shard workers. Engines are left open — the simulation
// holds no external resources — so a closed store's shards can still be
// inspected or recovered by tests. Close is idempotent.
func (s *Store) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		if sh.ch != nil {
			close(sh.ch)
		}
	}
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Devs lists every block device backing the store, in shard order
// (replicated shards contribute one device per replica, in replica
// order), for instrumentation: reset, counter aggregation, combined
// LBA CDFs. Replication's R× physical write traffic is visible here
// while the store's logical throughput is not multiplied.
func (s *Store) Devs() []blockdev.Host {
	devs := make([]blockdev.Host, 0, len(s.shards))
	for _, sh := range s.shards {
		devs = append(devs, sh.devs...)
	}
	return devs
}

// Faults lists the fault devices backing the store, aligned with
// Devs() (entries are nil for stacks opened without fault injection).
// The crash harness polls them between pump rounds and force-cuts the
// remaining devices when a whole-machine cut fires.
func (s *Store) Faults() []*faultdev.Dev {
	fds := make([]*faultdev.Dev, 0, len(s.shards))
	for _, sh := range s.shards {
		fds = append(fds, sh.faults...)
	}
	return fds
}

// ShardOf maps a key id to its owning shard through a SplitMix64
// finalizer — uniform spreading regardless of key-id locality, and
// stable across runs so the dataset's shard assignment is part of the
// experiment's deterministic state.
func ShardOf(id uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	z := (id ^ (id >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(shards))
}

// Submit enqueues an operation for the next Pump and returns its global
// submission number. Submit itself costs no virtual time — admission is
// free, like a doorbell write; all queueing happens on the shard clock.
func (s *Store) Submit(op Op) uint64 {
	sh := s.shards[ShardOf(op.KeyID, len(s.shards))]
	if n := len(sh.intake); n > 0 && op.Submit < sh.intake[n-1].op.Submit {
		sh.unsorted = true
	}
	seq := s.seq
	s.seq++
	s.pending++
	sh.intake = append(sh.intake, request{seq: seq, op: op})
	return seq
}

// Pump services every submitted operation — shards in parallel, each on
// its own worker — and returns the completions in global submission
// order. The returned slice is reused by the next Pump.
func (s *Store) Pump() []Completion {
	s.comps = s.comps[:0]
	if s.pending == 0 {
		return s.comps
	}
	needSort := len(s.shards) > 1
	if len(s.shards) == 1 {
		sh := s.shards[0]
		needSort = sh.unsorted
		sh.process()
	} else {
		n := 0
		for _, sh := range s.shards {
			if len(sh.intake) > 0 {
				n++
			}
		}
		s.wg.Add(n)
		for _, sh := range s.shards {
			if len(sh.intake) == 0 {
				continue
			}
			sh := sh
			sh.ch <- func() {
				sh.process()
				s.wg.Done()
			}
		}
		s.wg.Wait()
	}
	for _, sh := range s.shards {
		s.comps = append(s.comps, sh.comps...)
		sh.comps = sh.comps[:0]
		sh.intake = sh.intake[:0]
		sh.unsorted = false
	}
	if needSort {
		sort.Slice(s.comps, func(i, j int) bool { return s.comps[i].Seq < s.comps[j].Seq })
	}
	s.pending = 0
	return s.comps
}

// ClearFailure clears shard i's sticky engine failure after the caller
// has repaired the shard's engine between pump rounds — the replica
// failover seam: when one replica of a shard's replica group dies
// mid-batch, the batch's errors stick to the shard, the crash harness
// fails the dead replica out of the group (replica.Group.Kill) and
// clears the shard so the surviving replicas keep serving. Must only be
// called between Pump/FlushAll/Scan rounds, never concurrently with
// them. An out-of-range shard index is an error, not a panic.
func (s *Store) ClearFailure(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("store: clear failure: shard %d out of range (shards %d)", i, len(s.shards))
	}
	s.shards[i].failed = nil
	return nil
}

// each runs fn on every shard — in parallel on multi-shard stores —
// and returns after all have finished.
func (s *Store) each(fn func(*shard)) {
	if len(s.shards) == 1 {
		fn(s.shards[0])
		return
	}
	s.wg.Add(len(s.shards))
	for _, sh := range s.shards {
		sh := sh
		sh.ch <- func() {
			fn(sh)
			s.wg.Done()
		}
	}
	s.wg.Wait()
}

// process services the shard's intake batch in (submit, seq) order.
func (sh *shard) process() {
	if sh.unsorted {
		sortRequests(sh.intake)
	}
	sh.retryLeft = retryBudget
	var gc engine.GroupCommitter
	if countWrites(sh.intake) > 1 {
		if g, ok := sh.eng.(engine.GroupCommitter); ok {
			gc = g
			gc.BeginGroupCommit()
		}
	}
	for i := 0; i < len(sh.intake); {
		r := sh.intake[i]
		if sh.failed != nil {
			sh.errStats.Unavailable++
			sh.push(r, r.op.Submit, nil, false, sh.failed)
			i++
			continue
		}
		if r.op.Wave && r.op.Kind == Get {
			// Read wave: all members start together; the clock advances
			// to the slowest completion, like QueueDepth outstanding
			// host requests on one queue.
			j := i + 1
			for j < len(sh.intake) {
				n := sh.intake[j].op
				if !n.Wave || n.Kind != Get || n.Client != r.op.Client || n.Submit != r.op.Submit {
					break
				}
				j++
			}
			start := maxDur(sh.clock, r.op.Submit)
			end := start
			for k := i; k < j; k++ {
				rq := sh.intake[k]
				if sh.failed != nil {
					sh.errStats.Unavailable++
					sh.push(rq, rq.op.Submit, nil, false, sh.failed)
					continue
				}
				done, v, found, err := sh.runOp(rq, start)
				if err != nil {
					done, v, found, err = sh.redo(rq, done, err)
				}
				if err != nil {
					sh.push(rq, done, nil, false, sh.fail(err))
					continue
				}
				if done > end {
					end = done
				}
				sh.push(rq, done, v, found, nil)
			}
			sh.clock = end
			i = j
			continue
		}
		start := maxDur(sh.clock, r.op.Submit)
		done, v, found, err := sh.runOp(r, start)
		if err != nil {
			done, v, found, err = sh.redo(r, done, err)
			if err != nil {
				err = sh.fail(err)
			}
		}
		sh.clock = done
		sh.push(r, done, v, found, err)
		i++
	}
	if gc != nil {
		syncDone, err := gc.EndGroupCommit(sh.clock)
		backoff := retryBase
		for err != nil {
			// The shared journal sync rides the same policy as ops:
			// transient errors back off and re-sync on the budget,
			// persistent member errors fail the replica over and re-sync
			// on the degraded group.
			if deverr.IsTransient(err) {
				sh.errStats.Transient++
				if sh.retryLeft <= 0 {
					break
				}
				sh.retryLeft--
				sh.errStats.Retries++
				sh.clock += backoff
				if backoff < retryCap {
					backoff *= 2
				}
			} else {
				sh.errStats.Persistent++
				if !sh.failOver(err) {
					break
				}
			}
			syncDone, err = gc.EndGroupCommit(sh.clock)
		}
		if err != nil {
			err = sh.fail(err)
			for k := range sh.comps {
				c := &sh.comps[k]
				if c.Kind != Get && c.Err == nil {
					c.Err = err
				}
			}
			return
		}
		// The group's writes become durable at the shared sync.
		for k := range sh.comps {
			c := &sh.comps[k]
			if c.Kind != Get && c.Err == nil && c.Done < syncDone {
				c.Done = syncDone
			}
		}
		if syncDone > sh.clock {
			sh.clock = syncDone
		}
	}
}

// runOp dispatches one request to the shard's engine at the given
// start time. It is the single raw attempt; retry and failover policy
// live in redo (degrade.go).
func (sh *shard) runOp(r request, at sim.Duration) (done sim.Duration, v []byte, found bool, err error) {
	switch r.op.Kind {
	case Get:
		done, v, found, err = sh.eng.Get(at, r.op.Key)
	case Put:
		done, err = sh.eng.Put(at, r.op.Key, r.op.Value, r.op.ValueLen)
	case Delete:
		if del, ok := sh.eng.(Deleter); ok {
			done, err = del.Delete(at, r.op.Key)
		} else {
			done, err = at, fmt.Errorf("store: shard %d engine does not support Delete", sh.idx)
		}
	default:
		done, err = at, fmt.Errorf("store: unknown op kind %d", r.op.Kind)
	}
	return done, v, found, err
}

func (sh *shard) push(r request, done sim.Duration, v []byte, found bool, err error) {
	sh.comps = append(sh.comps, Completion{
		Seq:    r.seq,
		Client: r.op.Client,
		Kind:   r.op.Kind,
		Wave:   r.op.Wave,
		Submit: r.op.Submit,
		Done:   done,
		Value:  v,
		Found:  found,
		Err:    err,
	})
}

func countWrites(rs []request) int {
	n := 0
	for i := range rs {
		if rs[i].op.Kind != Get {
			n++
		}
	}
	return n
}

// sortRequests orders by (submit time, submission number): FIFO by
// virtual arrival with deterministic ties. Intakes are small (at most
// clients × queue depth), so an insertion sort avoids sort.Slice's
// per-call closure allocation on the hot path.
func sortRequests(rs []request) {
	if len(rs) > 64 {
		sort.Slice(rs, func(i, j int) bool { return requestLess(rs[i], rs[j]) })
		return
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && requestLess(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func requestLess(a, b request) bool {
	if a.op.Submit != b.op.Submit {
		return a.op.Submit < b.op.Submit
	}
	return a.seq < b.seq
}

// Load ingests keys 0..numKeys-1 with nil values of valueBytes each —
// the paper's sequential load — each key on its owning shard. Shards
// load in parallel; within a shard ids stay ascending, so a 1-shard
// load is the exact historical sequence. Returns the time the slowest
// shard finished and the first error in shard order.
func (s *Store) Load(valueBytes int, numKeys uint64) (sim.Duration, error) {
	shards := len(s.shards)
	s.each(func(sh *shard) {
		key := make([]byte, kv.KeySize)
		now := sh.clock
		var err error
		for id := uint64(0); id < numKeys; id++ {
			if ShardOf(id, shards) != sh.idx {
				continue
			}
			kv.AppendKey(key, id)
			now, err = sh.eng.Put(now, key, nil, valueBytes)
			if err != nil {
				break
			}
		}
		sh.clock = now
		sh.err = err
	})
	return s.collectEach()
}

// FlushAll flushes every shard (no later than now on each shard's
// clock) and returns the time the slowest shard finished.
func (s *Store) FlushAll(now sim.Duration) (sim.Duration, error) {
	s.each(func(sh *shard) {
		sh.clock, sh.err = sh.eng.FlushAll(maxDur(sh.clock, now))
	})
	return s.collectEach()
}

// Quiesce drains background work on every shard and returns the time
// the slowest shard went idle.
func (s *Store) Quiesce(now sim.Duration) sim.Duration {
	s.each(func(sh *shard) {
		sh.clock = sh.eng.Quiesce(maxDur(sh.clock, now))
		sh.err = nil
	})
	end, _ := s.collectEach()
	return end
}

// collectEach gathers the max clock and first error after an each().
func (s *Store) collectEach() (sim.Duration, error) {
	var end sim.Duration
	var err error
	for _, sh := range s.shards {
		if sh.clock > end {
			end = sh.clock
		}
		if err == nil && sh.err != nil {
			err = sh.err
		}
		sh.err = nil
	}
	return end, err
}

// Scan scatters a range read to every shard and k-way merges the
// per-shard results (shard key spaces are disjoint, so the merge is a
// plain ordered interleave) up to limit entries. It returns the time
// the slowest shard finished its scan.
func (s *Store) Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error) {
	parts := make([][]kv.Entry, len(s.shards))
	s.each(func(sh *shard) {
		sc, ok := sh.eng.(Scanner)
		if !ok {
			sh.err = fmt.Errorf("store: shard %d engine does not support Scan", sh.idx)
			return
		}
		sh.clock, parts[sh.idx], sh.err = sc.Scan(maxDur(sh.clock, now), start, limit)
	})
	end, err := s.collectEach()
	if err != nil {
		return end, nil, err
	}
	heads := make([]int, len(parts))
	var out []kv.Entry
	for len(out) < limit {
		best := -1
		for i, p := range parts {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || kv.CompareKeys(p[heads[i]].Key, parts[best][heads[best]].Key) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, parts[best][heads[best]])
		heads[best]++
	}
	return end, out, nil
}

// Stats aggregates engine statistics over shards.
func (s *Store) Stats() kv.EngineStats {
	var t kv.EngineStats
	for _, sh := range s.shards {
		t = t.Add(sh.eng.Stats())
	}
	return t
}

// DiskUsageBytes aggregates disk footprint over shards.
func (s *Store) DiskUsageBytes() int64 {
	var t int64
	for _, sh := range s.shards {
		t += sh.eng.DiskUsageBytes()
	}
	return t
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
