package store_test

import (
	"bytes"
	"fmt"
	"testing"

	"ptsbench/internal/engine"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
	"ptsbench/internal/store"
)

// mixedScript drives a fixed put/get/delete mix through fn, which maps
// (now, id, kind) to the next virtual time, and returns the end time.
// kinds: 0 get, 1 put, 2 delete.
func mixedScript(t *testing.T, ops int, fn func(now sim.Duration, id uint64, kind int) (sim.Duration, error)) sim.Duration {
	t.Helper()
	rng := sim.NewRNG(99)
	var now sim.Duration
	for i := 0; i < ops; i++ {
		id := rng.Uint64n(700)
		kind := 1
		switch {
		case rng.Uint64n(10) < 3:
			kind = 0
		case rng.Uint64n(16) == 0:
			kind = 2
		}
		var err error
		now, err = fn(now, id, kind)
		if err != nil {
			t.Fatal(err)
		}
	}
	return now
}

// TestSingleShardMatchesEngine pins the serving layer's zero-cost
// contract: a 1-shard store driven one op per pump is clock- and
// counter-identical to calling the engine directly.
func TestSingleShardMatchesEngine(t *testing.T) {
	drv, err := engine.Lookup("lsm")
	if err != nil {
		t.Fatal(err)
	}
	tun := map[string]string{"memtable_bytes": "16384"}

	direct, directParts := openShardStack(t, drv, false, tun, 7)
	key := make([]byte, kv.KeySize)
	endDirect := mixedScript(t, 3000, func(now sim.Duration, id uint64, kind int) (sim.Duration, error) {
		kv.AppendKey(key, id)
		switch kind {
		case 0:
			done, _, _, err := direct.Engine.Get(now, key)
			return done, err
		case 2:
			done, err := direct.Engine.(store.Deleter).Delete(now, key)
			return done, err
		default:
			return direct.Engine.Put(now, key, nil, 256)
		}
	})

	var viaParts shardParts
	st, err := store.New(1, func(i int) (store.Stack, error) {
		stack, p := openShardStack(t, drv, false, tun, 7)
		viaParts = p
		return stack, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	endStore := mixedScript(t, 3000, func(now sim.Duration, id uint64, kind int) (sim.Duration, error) {
		kv.AppendKey(key, id)
		op := store.Op{Client: 0, Submit: now, KeyID: id, Key: key}
		switch kind {
		case 0:
			op.Kind = store.Get
		case 2:
			op.Kind = store.Delete
		default:
			op.Kind = store.Put
			op.ValueLen = 256
		}
		st.Submit(op)
		c := st.Pump()[0]
		return c.Done, c.Err
	})

	if endDirect != endStore {
		t.Fatalf("virtual end time diverged: direct %d, store %d", endDirect, endStore)
	}
	if ds, ss := direct.Engine.Stats(), st.Stats(); ds != ss {
		t.Fatalf("engine stats diverged:\ndirect %+v\nstore  %+v", ds, ss)
	}
	if dc, sc := directParts.dev.Counters(), viaParts.dev.Counters(); dc != sc {
		t.Fatalf("device counters diverged:\ndirect %+v\nstore  %+v", dc, sc)
	}
}

// pumpFingerprint drives a multi-client workload through an N-shard
// store in submission epochs and fingerprints every completion.
func pumpFingerprint(t *testing.T, shards, clients, epochs int) string {
	t.Helper()
	drv, err := engine.Lookup("lsm")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(shards, func(i int) (store.Stack, error) {
		stack, _ := openShardStack(t, drv, false, map[string]string{"memtable_bytes": "16384"}, uint64(10+i))
		return stack, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rngs := make([]*sim.RNG, clients)
	clocks := make([]sim.Duration, clients)
	keys := make([][]byte, clients)
	for c := range rngs {
		rngs[c] = sim.NewRNG(uint64(1000 + c))
		keys[c] = make([]byte, kv.KeySize)
	}
	var buf bytes.Buffer
	for e := 0; e < epochs; e++ {
		for c := 0; c < clients; c++ {
			id := rngs[c].Uint64n(5000)
			kv.AppendKey(keys[c], id)
			op := store.Op{Client: c, Submit: clocks[c], KeyID: id, Key: keys[c]}
			if rngs[c].Uint64n(4) == 0 {
				op.Kind = store.Get
			} else {
				op.Kind = store.Put
				op.ValueLen = 128
			}
			st.Submit(op)
		}
		for _, comp := range st.Pump() {
			if comp.Err != nil {
				t.Fatal(comp.Err)
			}
			clocks[comp.Client] = comp.Done
			fmt.Fprintf(&buf, "%d:%d:%d:%v ", comp.Seq, comp.Client, comp.Done, comp.Found)
		}
	}
	fmt.Fprintf(&buf, "| %+v", st.Stats())
	return buf.String()
}

// TestShardedDeterminism pins the determinism contract: shard workers
// run on real goroutines, but identical submission sequences produce
// identical completions, clock for clock.
func TestShardedDeterminism(t *testing.T) {
	a := pumpFingerprint(t, 4, 8, 200)
	b := pumpFingerprint(t, 4, 8, 200)
	if a != b {
		t.Fatal("identical multi-shard workloads diverged")
	}
}

// TestCrossShardScanOrdering checks the scatter + k-way merge against a
// reference model: keys hash-spread over 3 shards must come back in one
// globally sorted stream, deletes excluded, limits respected.
func TestCrossShardScanOrdering(t *testing.T) {
	drv, err := engine.Lookup("btree")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(3, func(i int) (store.Stack, error) {
		stack, _ := openShardStack(t, drv, true, map[string]string{"leaf_page_bytes": "2048"}, uint64(30+i))
		return stack, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sy := &store.Sync{S: st}

	live := map[uint64]bool{}
	var now sim.Duration
	for id := uint64(0); id < 400; id++ {
		if now, err = sy.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0); err != nil {
			t.Fatal(err)
		}
		live[id] = true
	}
	if now, err = sy.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 400; id += 5 {
		if now, err = sy.Delete(now, kv.EncodeKey(id)); err != nil {
			t.Fatal(err)
		}
		live[id] = false
	}

	for _, tc := range []struct {
		start uint64
		limit int
	}{{0, 1000}, {37, 60}, {390, 50}} {
		_, got, err := st.Scan(now, kv.EncodeKey(tc.start), tc.limit)
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for id := tc.start; id < 400 && len(want) < tc.limit; id++ {
			if live[id] {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("scan(%d,%d): %d entries, want %d", tc.start, tc.limit, len(got), len(want))
		}
		for i, e := range got {
			id, err := kv.DecodeKey(e.Key)
			if err != nil {
				t.Fatal(err)
			}
			if id != want[i] {
				t.Fatalf("scan(%d,%d) position %d: key %d, want %d", tc.start, tc.limit, i, id, want[i])
			}
			if i > 0 && kv.CompareKeys(got[i-1].Key, e.Key) >= 0 {
				t.Fatalf("scan out of order at position %d", i)
			}
		}
	}
}

// TestGroupCommitSharesJournalSync: a pump whose intake carries several
// writes brackets them with the engine's group commit, collapsing
// per-put journal tail-page rewrites into one shared sync — strictly
// fewer host bytes than pumping the same puts one by one.
func TestGroupCommitSharesJournalSync(t *testing.T) {
	drv, err := engine.Lookup("btree")
	if err != nil {
		t.Fatal(err)
	}
	tun := map[string]string{"journal_sync": "true"}
	run := func(grouped bool) (int64, []store.Completion) {
		var parts shardParts
		st, err := store.New(1, func(i int) (store.Stack, error) {
			stack, p := openShardStack(t, drv, false, tun, 5)
			parts = p
			return stack, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		keys := make([][]byte, 8)
		var comps []store.Completion
		for i := range keys {
			keys[i] = kv.EncodeKey(uint64(i))
			st.Submit(store.Op{Kind: store.Put, Submit: 0, KeyID: uint64(i), Key: keys[i], ValueLen: 64})
			if !grouped {
				comps = append(comps, st.Pump()...)
			}
		}
		if grouped {
			comps = append(comps, st.Pump()...)
		}
		for _, c := range comps {
			if c.Err != nil {
				t.Fatal(c.Err)
			}
		}
		return parts.dev.Counters().BytesWritten, comps
	}
	groupedBytes, groupedComps := run(true)
	serialBytes, _ := run(false)
	if groupedBytes >= serialBytes {
		t.Fatalf("group commit wrote %d host bytes, serial syncs wrote %d — expected fewer", groupedBytes, serialBytes)
	}
	// Group-committed writes all become durable at the shared sync.
	last := groupedComps[len(groupedComps)-1].Done
	for _, c := range groupedComps {
		if c.Done != last {
			t.Fatalf("grouped write completed at %d, want shared sync time %d", c.Done, last)
		}
	}
}

// TestManyClientsFewShardsStress hammers 2 shards with 64 clients for
// many epochs — the shape `go test -race` uses to vet the worker
// handoff — and checks the pipeline stays deterministic under it.
func TestManyClientsFewShardsStress(t *testing.T) {
	a := pumpFingerprint(t, 2, 64, 150)
	b := pumpFingerprint(t, 2, 64, 150)
	if a != b {
		t.Fatal("stress workloads diverged")
	}
}

// TestShardOfSpreads sanity-checks the routing hash: sequential key ids
// must spread roughly evenly (within 2x of fair share over 8 shards).
func TestShardOfSpreads(t *testing.T) {
	const shards, n = 8, 1 << 14
	var counts [shards]int
	for id := uint64(0); id < n; id++ {
		s := store.ShardOf(id, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%d) = %d out of range", id, s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < n/shards/2 || c > n/shards*2 {
			t.Fatalf("shard %d owns %d of %d keys — routing hash is skewed", s, c, n)
		}
	}
}
