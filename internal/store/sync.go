package store

import (
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// Sync is a synchronous facade over the asynchronous pipeline: every
// call submits one operation and pumps it to completion, so the full
// serving path — key routing, shard intake, clock merging — sits under
// the plain engine-shaped surface. The engine-conformance suite drives
// a sharded store through it, holding the store to the same behavioural
// contract as a single engine.
type Sync struct {
	S *Store
}

func (s *Sync) do(op Op) Completion {
	s.S.Submit(op)
	comps := s.S.Pump()
	return comps[len(comps)-1]
}

// syncKeyID routes a key: canonical keys by their id, anything else by
// an FNV-1a hash so arbitrary keys still spread over shards.
func syncKeyID(key []byte) uint64 {
	if id, err := kv.DecodeKey(key); err == nil {
		return id
	}
	var h uint64 = 1469598103934665603
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// Put implements kv.Engine.
func (s *Sync) Put(now sim.Duration, key, value []byte, valueLen int) (sim.Duration, error) {
	c := s.do(Op{Kind: Put, Submit: now, KeyID: syncKeyID(key), Key: key, Value: value, ValueLen: valueLen})
	return c.Done, c.Err
}

// Get implements kv.Engine.
func (s *Sync) Get(now sim.Duration, key []byte) (sim.Duration, []byte, bool, error) {
	c := s.do(Op{Kind: Get, Submit: now, KeyID: syncKeyID(key), Key: key})
	return c.Done, c.Value, c.Found, c.Err
}

// Delete routes a delete to the owning shard's engine.
func (s *Sync) Delete(now sim.Duration, key []byte) (sim.Duration, error) {
	c := s.do(Op{Kind: Delete, Submit: now, KeyID: syncKeyID(key), Key: key})
	return c.Done, c.Err
}

// Scan merges a range read across all shards.
func (s *Sync) Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error) {
	return s.S.Scan(now, start, limit)
}

// FlushAll flushes every shard.
func (s *Sync) FlushAll(now sim.Duration) (sim.Duration, error) {
	return s.S.FlushAll(now)
}

// Quiesce drains every shard.
func (s *Sync) Quiesce(now sim.Duration) sim.Duration {
	return s.S.Quiesce(now)
}

// Stats aggregates engine statistics over shards.
func (s *Sync) Stats() kv.EngineStats { return s.S.Stats() }

// DiskUsageBytes aggregates disk footprint over shards.
func (s *Sync) DiskUsageBytes() int64 { return s.S.DiskUsageBytes() }
