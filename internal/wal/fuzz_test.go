package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"testing"

	"ptsbench/internal/extfs"
	"ptsbench/internal/filedev"
	"ptsbench/internal/sim"
)

// FuzzWALReplay corrupts a real, synced WAL segment image — bit flips,
// truncated (zeroed) tails, runs of garbage — and requires that Replay
// (a) never panics and (b) still returns every record that lies wholly
// before the first corrupted byte, byte-for-byte. Nothing is asserted
// about records at or past the damage: CRC32 is linear, so a fuzzer can
// legitimately forge a record by flipping payload and checksum bits
// together; the contract under corruption is a clean stop, not
// tamper-proofing.
//
// The fuzz input is a sequence of 5-byte mutation ops applied to the
// segment's byte image:
//
//	b[0]%3  op: 0 = XOR b[3] into the byte at off (no-op when b[3]==0),
//	            1 = zero from off to end of file (a truncated tail),
//	            2 = write b[4]%64+1 bytes of garbage at off
//	b[1:3]  off, little-endian, modulo the file size
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0x08, 0x00, 0xff, 0x00}) // flip bits early in the log
	f.Add([]byte{1, 0x40, 0x00, 0x00, 0x00}) // zero the tail from byte 64
	f.Add([]byte{2, 0x80, 0x00, 0x5a, 0x20}) // 33 garbage bytes at 128
	f.Add([]byte{0, 0x00, 0x00, 0x01, 0x00, 0, 0xf0, 0x00, 0x80, 0x00})
	f.Fuzz(func(t *testing.T, raw []byte) {
		dev, err := filedev.Open(filedev.Config{
			Path:  filepath.Join(t.TempDir(), "wal.img"),
			Pages: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		fs, err := extfs.Mount(dev, extfs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		w, err := Create(fs, "seg", true)
		if err != nil {
			t.Fatal(err)
		}

		// Append a known, synced record stream and note where each
		// record's bytes start and end in the segment.
		var (
			originals []Record
			ends      []int
			now       sim.Duration
			off       int
		)
		for i := 0; i < 8; i++ {
			rec := Record{
				Seq:     uint64(i + 1),
				Key:     []byte(fmt.Sprintf("key-%02d", i)),
				Value:   bytes.Repeat([]byte{byte('a' + i)}, 5+i*3),
				Deleted: i%5 == 4,
			}
			if rec.Deleted {
				rec.Value = nil
			}
			originals = append(originals, rec)
			off += rec.EncodedLen()
			ends = append(ends, off)
			if now, err = w.Append(now, &rec, true); err != nil {
				t.Fatal(err)
			}
		}

		// Pull the segment's full byte image back off the device.
		seg, err := fs.Open("seg")
		if err != nil {
			t.Fatal(err)
		}
		pages := int(seg.SizePages())
		img := make([]byte, pages*fs.PageSize())
		if now, err = seg.ReadAt(now, 0, pages, img); err != nil {
			t.Fatal(err)
		}

		// Apply the mutation ops, tracking the lowest byte touched.
		minTouched := len(img)
		for b := raw; len(b) >= 5; b = b[5:] {
			pos := int(binary.LittleEndian.Uint16(b[1:3])) % len(img)
			switch b[0] % 3 {
			case 0:
				if b[3] == 0 {
					continue // XOR 0 would dodge the minTouched tracking
				}
				img[pos] ^= b[3]
			case 1:
				for i := pos; i < len(img); i++ {
					img[i] = 0
				}
			case 2:
				n := int(b[4])%64 + 1
				for i := 0; i < n && pos+i < len(img); i++ {
					img[pos+i] = byte(0xC3 ^ i*7 ^ int(b[3]))
				}
			}
			if pos < minTouched {
				minTouched = pos
			}
		}
		if now, err = seg.WriteAt(now, 0, pages, img); err != nil {
			t.Fatal(err)
		}

		var replayed []Record
		if _, err = Replay(fs, "seg", now, func(r Record) {
			replayed = append(replayed, r)
		}); err != nil {
			t.Fatalf("replay errored on a readable segment: %v", err)
		}

		// Every record wholly before the damage must survive intact; with
		// no mutations that is the entire stream, and nothing extra may
		// appear past it.
		intact := 0
		for intact < len(ends) && ends[intact] <= minTouched {
			intact++
		}
		if len(replayed) < intact {
			t.Fatalf("replay returned %d records, want at least the %d before the first corrupted byte %d",
				len(replayed), intact, minTouched)
		}
		if minTouched == len(img) && len(replayed) != len(originals) {
			t.Fatalf("untouched log replayed %d of %d records", len(replayed), len(originals))
		}
		for i := 0; i < intact; i++ {
			if !recEqual(replayed[i], originals[i]) {
				t.Fatalf("record %d corrupted by damage at byte %d:\n got %+v\nwant %+v",
					i, minTouched, replayed[i], originals[i])
			}
		}
	})
}

func recEqual(a, b Record) bool {
	return a.Seq == b.Seq && a.Deleted == b.Deleted &&
		bytes.Equal(a.Key, b.Key) && bytes.Equal(a.Value, b.Value)
}
