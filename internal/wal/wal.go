// Package wal implements a write-ahead log over extfs: length-prefixed,
// CRC-protected records appended to segment files, synced page-aligned.
// Both engines journal through it — the LSM for its memtable, the B+Tree
// for its update journal.
//
// Sync granularity matters for write amplification: a sync rewrites the
// partial tail page, so small synced records cost a full device page, the
// same overhead a real WAL pays with direct I/O (the paper's setup).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ptsbench/internal/extfs"
	"ptsbench/internal/sim"
)

// Record is one logical WAL entry.
type Record struct {
	Seq     uint64
	Key     []byte
	Value   []byte
	Deleted bool
	// ValueLen mirrors kv.Entry.ValueLen for accounting-only mode.
	ValueLen int
}

// headerSize is the per-record on-disk overhead:
// crc(4) + payloadLen(4) + seq(8) + flags(1) + keyLen(2) + valueLen(4).
const headerSize = 4 + 4 + 8 + 1 + 2 + 4

// EncodedLen returns the on-disk size of a record.
func (r *Record) EncodedLen() int {
	vl := r.ValueLen
	if r.Value != nil {
		vl = len(r.Value)
	}
	return headerSize + len(r.Key) + vl
}

// encode serializes the record. Only used in content mode (Value held).
func (r *Record) encode() []byte {
	vl := len(r.Value)
	payload := make([]byte, 8+1+2+4+len(r.Key)+vl)
	binary.LittleEndian.PutUint64(payload[0:], r.Seq)
	if r.Deleted {
		payload[8] = 1
	}
	binary.LittleEndian.PutUint16(payload[9:], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(payload[11:], uint32(vl))
	copy(payload[15:], r.Key)
	copy(payload[15+len(r.Key):], r.Value)

	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(payload)))
	copy(out[8:], payload)
	return out
}

// decodeRecord parses one record at buf, returning the record and the
// bytes consumed, or ok=false at end-of-log (zero length or bad CRC).
func decodeRecord(buf []byte) (rec Record, n int, ok bool) {
	if len(buf) < 8 {
		return rec, 0, false
	}
	crc := binary.LittleEndian.Uint32(buf[0:])
	plen := binary.LittleEndian.Uint32(buf[4:])
	if plen == 0 || int(plen) > len(buf)-8 || plen < 15 {
		return rec, 0, false
	}
	payload := buf[8 : 8+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return rec, 0, false
	}
	rec.Seq = binary.LittleEndian.Uint64(payload[0:])
	rec.Deleted = payload[8] == 1
	kl := binary.LittleEndian.Uint16(payload[9:])
	vl := binary.LittleEndian.Uint32(payload[11:])
	if int(15+uint32(kl)+vl) != len(payload) {
		return rec, 0, false
	}
	rec.Key = append([]byte(nil), payload[15:15+kl]...)
	rec.Value = append([]byte(nil), payload[15+kl:]...)
	rec.ValueLen = int(vl)
	return rec, 8 + int(plen), true
}

// Writer appends records to a segment file.
type Writer struct {
	fs       *extfs.FS
	file     *extfs.File
	name     string
	pageSize int
	content  bool // retain record bytes (content mode)

	buf        []byte // full segment content in content mode
	size       int64  // logical bytes appended
	syncedSize int64  // bytes covered by the last sync
	syncedPage int64  // pages fully durable (file length written so far)
	syncCount  int64  // syncs that actually wrote (group-commit accounting)
}

// Create starts a new segment file with the given name. content selects
// whether record bytes are retained and written through (required for
// Replay).
func Create(fs *extfs.FS, name string, content bool) (*Writer, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &Writer{fs: fs, file: f, name: name, pageSize: fs.PageSize(), content: content}, nil
}

// Name returns the segment file name.
func (w *Writer) Name() string { return w.name }

// SizeBytes returns the logical bytes appended so far.
func (w *Writer) SizeBytes() int64 { return w.size }

// UnsyncedBytes returns the bytes appended since the last sync.
func (w *Writer) UnsyncedBytes() int64 { return w.size - w.syncedSize }

// SyncCount returns the number of syncs that reached the device (syncs
// with nothing new to write don't count). Group commit holds the
// invariant that a multi-write intake costs exactly one of these.
func (w *Writer) SyncCount() int64 { return w.syncCount }

// Append adds a record and, when sync is set, flushes it durably,
// returning the virtual completion time. Without sync the record is
// buffered and costs no I/O yet.
func (w *Writer) Append(now sim.Duration, rec *Record, sync bool) (sim.Duration, error) {
	if w.content {
		w.buf = append(w.buf, rec.encode()...)
		w.size = int64(len(w.buf))
	} else {
		w.size += int64(rec.EncodedLen())
	}
	if !sync {
		return now, nil
	}
	return w.Sync(now)
}

// Sync makes all appended records durable: it writes every page touched
// since the previous sync, including rewriting a previously synced
// partial tail page.
func (w *Writer) Sync(now sim.Duration) (sim.Duration, error) {
	if w.size == w.syncedSize {
		return now, nil
	}
	ps := int64(w.pageSize)
	firstPage := w.syncedSize / ps // tail page is rewritten if partial
	lastPage := (w.size - 1) / ps
	if need := lastPage + 1 - w.file.SizePages(); need > 0 {
		if err := w.file.Grow(need); err != nil {
			return now, err
		}
	}
	n := int(lastPage - firstPage + 1)
	var data []byte
	if w.content {
		data = make([]byte, int64(n)*ps)
		copy(data, w.buf[firstPage*ps:])
	}
	done, err := w.file.WriteAt(now, firstPage, n, data)
	if err != nil {
		return now, err
	}
	// A WAL sync is an fsync: the records written above — and every
	// earlier write — survive a power cut from here on. A failing
	// barrier means none of that can be assumed: leave the synced
	// watermarks untouched so a retry rewrites and re-barriers.
	if err := w.fs.Barrier(); err != nil {
		return now, err
	}
	w.syncedSize = w.size
	w.syncedPage = lastPage + 1
	w.syncCount++
	return done, nil
}

// Close syncs and releases the writer. The segment file remains until the
// caller removes it.
func (w *Writer) Close(now sim.Duration) (sim.Duration, error) {
	return w.Sync(now)
}

// Recycle logically truncates the segment for reuse, keeping its file and
// allocated pages: subsequent appends overwrite from offset zero. This
// models the log pre-allocation/recycling of real engines (WiredTiger
// recycles log files; RocksDB offers recycle_log_file_num), which keeps
// journal traffic confined to a fixed set of LBAs instead of sweeping the
// partition.
//
// Recycling overwrites the segment's first page with zeros so that a
// later Replay cannot resurrect the records of the previous generation —
// the page write is the recovery-safety cost real engines pay when they
// rewrite a recycled log's header. It returns the completion time of that
// write.
func (w *Writer) Recycle(now sim.Duration) (sim.Duration, error) {
	w.buf = w.buf[:0]
	w.size = 0
	w.syncedSize = 0
	w.syncedPage = 0
	if w.file.SizePages() > 0 {
		var zero []byte
		if w.content {
			zero = make([]byte, w.pageSize)
		}
		done, err := w.file.WriteAt(now, 0, 1, zero)
		if err != nil {
			return now, err
		}
		return done, nil
	}
	return now, nil
}

// Replay reads a segment and invokes fn for each intact record, stopping
// cleanly at the end of the log (a freshly recycled segment replays as
// empty). It requires content mode — the block device must retain bytes —
// and returns an error when the device demonstrably cannot.
func Replay(fs *extfs.FS, name string, now sim.Duration, fn func(Record)) (sim.Duration, error) {
	if c, ok := fs.Device().(interface{ ContentEnabled() bool }); ok && !c.ContentEnabled() {
		return now, fmt.Errorf("wal: replay of %s requires a content-enabled device", name)
	}
	f, err := fs.Open(name)
	if err != nil {
		return now, err
	}
	pages := f.SizePages()
	if pages == 0 {
		return now, nil
	}
	buf := make([]byte, pages*int64(fs.PageSize()))
	done, err := f.ReadAt(now, 0, int(pages), buf)
	if err != nil {
		return now, err
	}
	off := 0
	for {
		rec, n, ok := decodeRecord(buf[off:])
		if !ok {
			break
		}
		fn(rec)
		off += n
	}
	return done, nil
}
