package wal

import (
	"bytes"
	"testing"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
)

func newTestFS(t *testing.T, content bool) (*extfs.FS, *blockdev.Device) {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "wal-test",
			ReadFixed:  time.Microsecond,
			WriteFixed: time.Microsecond,
			ReadBW:     1 << 30,
			WriteBW:    1 << 30,
			HardwareOP: 0.25,
			EraseTime:  100 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.New(ssd)
	if content {
		dev.EnableContentStore()
	}
	fs, err := extfs.Mount(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func TestAppendSyncReplay(t *testing.T) {
	fs, _ := newTestFS(t, true)
	w, err := Create(fs, "wal-1", true)
	if err != nil {
		t.Fatal(err)
	}
	var now time.Duration
	recs := []Record{
		{Seq: 1, Key: kv.EncodeKey(10), Value: []byte("alpha")},
		{Seq: 2, Key: kv.EncodeKey(20), Value: []byte("beta")},
		{Seq: 3, Key: kv.EncodeKey(10), Deleted: true, Value: []byte{}},
	}
	for i := range recs {
		now, err = w.Append(now, &recs[i], true)
		if err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	if _, err := Replay(fs, "wal-1", now, func(r Record) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Seq != recs[i].Seq || !bytes.Equal(r.Key, recs[i].Key) ||
			!bytes.Equal(r.Value, recs[i].Value) || r.Deleted != recs[i].Deleted {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, recs[i])
		}
	}
}

func TestUnsyncedRecordsCostNoIO(t *testing.T) {
	fs, dev := newTestFS(t, false)
	w, _ := Create(fs, "w", false)
	before := dev.Counters().BytesWritten
	for i := 0; i < 10; i++ {
		if _, err := w.Append(0, &Record{Seq: uint64(i), Key: kv.EncodeKey(uint64(i)), ValueLen: 100}, false); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Counters().BytesWritten != before {
		t.Fatal("unsynced appends should not write")
	}
	if _, err := w.Sync(0); err != nil {
		t.Fatal(err)
	}
	if dev.Counters().BytesWritten == before {
		t.Fatal("sync should write")
	}
}

func TestSyncRewritesTailPage(t *testing.T) {
	fs, dev := newTestFS(t, false)
	w, _ := Create(fs, "w", false)
	// Two small synced records on the same page: two page writes (the
	// tail page is rewritten), i.e. synced small records cost a full
	// page each.
	w.Append(0, &Record{Seq: 1, Key: kv.EncodeKey(1), ValueLen: 10}, true)
	first := dev.Counters().BytesWritten
	if first != 4096 {
		t.Fatalf("first sync wrote %d bytes, want 4096", first)
	}
	w.Append(0, &Record{Seq: 2, Key: kv.EncodeKey(2), ValueLen: 10}, true)
	if got := dev.Counters().BytesWritten; got != 2*4096 {
		t.Fatalf("second sync wrote %d total, want %d", got, 2*4096)
	}
	// The file footprint is still one page.
	f, _ := fs.Open("w")
	if f.SizePages() != 1 {
		t.Fatalf("file pages = %d, want 1", f.SizePages())
	}
}

func TestLargeRecordSpansPages(t *testing.T) {
	fs, dev := newTestFS(t, false)
	w, _ := Create(fs, "w", false)
	w.Append(0, &Record{Seq: 1, Key: kv.EncodeKey(1), ValueLen: 10000}, true)
	// 10000 + header + key spans 3 pages.
	if got := dev.Counters().BytesWritten; got != 3*4096 {
		t.Fatalf("wrote %d bytes, want %d", got, 3*4096)
	}
}

func TestIdempotentSync(t *testing.T) {
	fs, dev := newTestFS(t, false)
	w, _ := Create(fs, "w", false)
	w.Append(0, &Record{Seq: 1, Key: kv.EncodeKey(1), ValueLen: 10}, true)
	before := dev.Counters().BytesWritten
	if _, err := w.Sync(0); err != nil {
		t.Fatal(err)
	}
	if dev.Counters().BytesWritten != before {
		t.Fatal("no-op sync should not write")
	}
}

func TestReplayEmptySegment(t *testing.T) {
	fs, _ := newTestFS(t, true)
	if _, err := Create(fs, "w", true); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := Replay(fs, "w", 0, func(Record) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("empty segment replayed %d records", count)
	}
}

func TestReplayMissingSegment(t *testing.T) {
	fs, _ := newTestFS(t, true)
	if _, err := Replay(fs, "missing", 0, func(Record) {}); err == nil {
		t.Fatal("expected error for missing segment")
	}
}

func TestReplayStopsAtCorruption(t *testing.T) {
	fs, dev := newTestFS(t, true)
	w, _ := Create(fs, "w", true)
	var now time.Duration
	for i := uint64(1); i <= 3; i++ {
		now, _ = w.Append(now, &Record{Seq: i, Key: kv.EncodeKey(i), Value: []byte("v")}, true)
	}
	// Corrupt the log tail by overwriting the page with garbage beyond
	// the first record (~43 bytes each): flip bytes of record 3.
	f, _ := fs.Open("w")
	buf := make([]byte, 4096)
	f.ReadAt(now, 0, 1, buf)
	for i := 90; i < 130 && i < len(buf); i++ {
		buf[i] ^= 0xFF
	}
	f.WriteAt(now, 0, 1, buf)
	_ = dev

	var seqs []uint64
	if _, err := Replay(fs, "w", now, func(r Record) { seqs = append(seqs, r.Seq) }); err != nil {
		t.Fatal(err)
	}
	if len(seqs) == 0 || len(seqs) >= 3 {
		t.Fatalf("replay should stop mid-log, got %d records", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("out-of-order replay: %v", seqs)
		}
	}
}

func TestEncodedLenMatchesEncode(t *testing.T) {
	r := Record{Seq: 9, Key: kv.EncodeKey(3), Value: make([]byte, 123)}
	if got := len(r.encode()); got != r.EncodedLen() {
		t.Fatalf("encode len %d != EncodedLen %d", got, r.EncodedLen())
	}
}

func TestReplayOnAccountingDeviceFails(t *testing.T) {
	fs, _ := newTestFS(t, false) // no content store
	w, _ := Create(fs, "w", true)
	w.Append(0, &Record{Seq: 1, Key: kv.EncodeKey(1), Value: []byte("x")}, true)
	if _, err := Replay(fs, "w", 0, func(Record) {}); err == nil {
		t.Fatal("replay without content store should error")
	}
}
