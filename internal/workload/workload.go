// Package workload generates the key-value workloads of the paper's
// evaluation (§3.2): a sequential load phase followed by single-threaded
// update traffic with a configurable read fraction, value size and key
// distribution (uniform by default, Zipfian available).
package workload

import (
	"fmt"
	"math"

	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// Dist selects the key distribution of the update phase.
type Dist int

const (
	// Uniform picks keys uniformly at random (the paper's default).
	Uniform Dist = iota
	// Zipfian picks keys with a YCSB-style scrambled Zipfian skew.
	Zipfian
	// SequentialDist cycles keys in increasing order, wrapping around.
	SequentialDist
)

// String implements fmt.Stringer.
func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case SequentialDist:
		return "sequential"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// ParseDist maps a distribution name (as produced by String) back to
// its value; spec files and CLI flags use it.
func ParseDist(name string) (Dist, error) {
	switch name {
	case "uniform":
		return Uniform, nil
	case "zipfian":
		return Zipfian, nil
	case "sequential":
		return SequentialDist, nil
	default:
		return 0, fmt.Errorf("workload: unknown distribution %q (have uniform, zipfian, sequential)", name)
	}
}

// Spec describes a workload.
type Spec struct {
	NumKeys      uint64
	ValueBytes   int
	ReadFraction float64 // 0 = write-only, 0.5 = the paper's 50:50 mix
	Dist         Dist
	ZipfTheta    float64 // skew for Zipfian (YCSB default 0.99)
	// Skew redirects this fraction of operations to a hot subset (the
	// lowest NumKeys/16 key ids) on top of the base distribution,
	// modeling the working-set concentration of multi-tenant serving
	// traffic without changing the distribution machinery. At 0 the
	// generator draws no extra randomness, so historical single-client
	// key streams are bit-identical.
	Skew float64
}

// Validate rejects nonsense and fills defaults.
func (s Spec) Validate() (Spec, error) {
	if s.NumKeys == 0 {
		return s, fmt.Errorf("workload: NumKeys must be positive")
	}
	if s.ValueBytes <= 0 {
		return s, fmt.Errorf("workload: ValueBytes must be positive")
	}
	if s.ReadFraction < 0 || s.ReadFraction > 1 {
		return s, fmt.Errorf("workload: ReadFraction %v outside [0,1]", s.ReadFraction)
	}
	if s.Skew < 0 || s.Skew > 1 {
		return s, fmt.Errorf("workload: Skew %v outside [0,1]", s.Skew)
	}
	if s.Dist == Zipfian && s.ZipfTheta == 0 {
		s.ZipfTheta = 0.99
	}
	return s, nil
}

// OpKind is a read or a write.
type OpKind int

// Op kinds.
const (
	OpWrite OpKind = iota
	OpRead
)

// Op is one generated operation.
type Op struct {
	Kind  OpKind
	KeyID uint64
}

// Generator produces the operation stream.
type Generator struct {
	spec    Spec
	rng     *sim.RNG
	zipf    *zipfGen
	seq     uint64
	hotKeys uint64
}

// NewGenerator builds a deterministic generator for the spec.
func NewGenerator(spec Spec, rng *sim.RNG) (*Generator, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	g := &Generator{spec: spec, rng: rng, hotKeys: hotKeysOf(spec)}
	if spec.Dist == Zipfian {
		g.zipf = newZipfGen(spec.NumKeys, spec.ZipfTheta)
	}
	return g, nil
}

func hotKeysOf(spec Spec) uint64 {
	hot := spec.NumKeys / 16
	if hot == 0 {
		hot = 1
	}
	return hot
}

// mix64 is the SplitMix64 finalizer; mix64(0) == 0, which ClientSeed
// and the store's shard routing rely on.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ClientSeed derives client c's generator seed from the shared base
// seed (itself drawn from the experiment seed). Client 0 gets the base
// seed unchanged — mix64(0) is 0 — so single-client runs keep the exact
// historical key stream no matter how many shards serve it; every other
// client gets an independent stream.
func ClientSeed(base uint64, client int) uint64 {
	return base ^ mix64(uint64(client))
}

// NewClientGenerators builds one deterministic generator per closed-loop
// client, all drawing from the same validated spec. The Zipfian rank
// table (an O(NumKeys) zeta sum) is computed once and shared; sequential
// clients start staggered at client×NumKeys/clients so they cover the
// keyspace instead of marching in lockstep.
func NewClientGenerators(spec Spec, baseSeed uint64, clients int) ([]*Generator, error) {
	if clients < 1 {
		return nil, fmt.Errorf("workload: clients must be >= 1 (got %d)", clients)
	}
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	var shared *zipfGen
	if spec.Dist == Zipfian {
		shared = newZipfGen(spec.NumKeys, spec.ZipfTheta)
	}
	gens := make([]*Generator, clients)
	stride := spec.NumKeys / uint64(clients)
	for c := range gens {
		gens[c] = &Generator{
			spec:    spec,
			rng:     sim.NewRNG(ClientSeed(baseSeed, c)),
			zipf:    shared,
			seq:     uint64(c) * stride,
			hotKeys: hotKeysOf(spec),
		}
	}
	return gens, nil
}

// Spec returns the validated spec.
func (g *Generator) Spec() Spec { return g.spec }

// Next returns the next operation.
func (g *Generator) Next() Op {
	var op Op
	if g.spec.ReadFraction > 0 && g.rng.Float64() < g.spec.ReadFraction {
		op.Kind = OpRead
	}
	switch g.spec.Dist {
	case Uniform:
		op.KeyID = g.rng.Uint64n(g.spec.NumKeys)
	case Zipfian:
		op.KeyID = g.zipf.next(g.rng)
	case SequentialDist:
		op.KeyID = g.seq % g.spec.NumKeys
		g.seq++
	}
	if g.spec.Skew > 0 && g.rng.Float64() < g.spec.Skew {
		op.KeyID %= g.hotKeys
	}
	return op
}

// Key returns the canonical encoded key for id.
func (g *Generator) Key(id uint64) []byte { return kv.EncodeKey(id) }

// zipfGen implements the Gray et al. Zipfian generator used by YCSB,
// with final scrambling so that popular keys are spread over the
// keyspace rather than clustered at the low end.
type zipfGen struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

func newZipfGen(n uint64, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// For large n this O(n) sum is computed once per generator; the
	// keyspaces used by the harness keep it affordable.
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfGen) next(rng *sim.RNG) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	// Scramble: FNV-style hash of the rank, mod n.
	h := rank*0x9E3779B97F4A7C15 + 0x123456789
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h % z.n
}
