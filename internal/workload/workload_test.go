package workload

import (
	"testing"

	"ptsbench/internal/sim"
)

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{NumKeys: 10, ValueBytes: 100}, true},
		{Spec{NumKeys: 0, ValueBytes: 100}, false},
		{Spec{NumKeys: 10, ValueBytes: 0}, false},
		{Spec{NumKeys: 10, ValueBytes: 1, ReadFraction: 1.5}, false},
		{Spec{NumKeys: 10, ValueBytes: 1, ReadFraction: -0.1}, false},
		{Spec{NumKeys: 10, ValueBytes: 1, ReadFraction: 0.5}, true},
	}
	for i, c := range cases {
		_, err := c.spec.Validate()
		if c.ok && err != nil {
			t.Fatalf("case %d: unexpected error %v", i, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestZipfThetaDefault(t *testing.T) {
	s, err := Spec{NumKeys: 10, ValueBytes: 1, Dist: Zipfian}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.ZipfTheta != 0.99 {
		t.Fatalf("theta default = %v", s.ZipfTheta)
	}
}

func TestUniformCoverage(t *testing.T) {
	g, err := NewGenerator(Spec{NumKeys: 100, ValueBytes: 10}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		op := g.Next()
		if op.Kind != OpWrite {
			t.Fatal("write-only workload generated a read")
		}
		counts[op.KeyID]++
	}
	for id, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("key %d hit %d times, want ~1000", id, c)
		}
	}
}

func TestReadFraction(t *testing.T) {
	g, err := NewGenerator(Spec{NumKeys: 100, ValueBytes: 10, ReadFraction: 0.5}, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next().Kind == OpRead {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("read fraction %.3f, want ~0.5", frac)
	}
}

func TestSequentialWraps(t *testing.T) {
	g, err := NewGenerator(Spec{NumKeys: 5, ValueBytes: 1, Dist: SequentialDist}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for want := uint64(0); want < 5; want++ {
			if got := g.Next().KeyID; got != want {
				t.Fatalf("sequential key %d, want %d", got, want)
			}
		}
	}
}

func TestZipfianSkewAndBounds(t *testing.T) {
	const n = 1000
	g, err := NewGenerator(Spec{NumKeys: n, ValueBytes: 1, Dist: Zipfian}, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		id := g.Next().KeyID
		if id >= n {
			t.Fatalf("key %d out of range", id)
		}
		counts[id]++
	}
	// Skew check: the most popular key should see far more than the
	// uniform share (draws/n = 200).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Fatalf("zipfian max key count %d, expected heavy skew (>1000)", max)
	}
	// Coverage check: scrambling should still reach many distinct keys.
	if len(counts) < n/3 {
		t.Fatalf("zipfian hit only %d distinct keys", len(counts))
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []Op {
		g, _ := NewGenerator(Spec{NumKeys: 50, ValueBytes: 1, ReadFraction: 0.3}, sim.NewRNG(7))
		ops := make([]Op, 1000)
		for i := range ops {
			ops[i] = g.Next()
		}
		return ops
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestDistString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" ||
		SequentialDist.String() != "sequential" {
		t.Fatal("Dist.String broken")
	}
	if Dist(99).String() == "" {
		t.Fatal("unknown dist should still render")
	}
}

func TestKeyEncoding(t *testing.T) {
	g, _ := NewGenerator(Spec{NumKeys: 10, ValueBytes: 1}, sim.NewRNG(1))
	if len(g.Key(3)) != 16 {
		t.Fatal("key should be 16 bytes")
	}
}
