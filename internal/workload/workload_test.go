package workload

import (
	"testing"

	"ptsbench/internal/sim"
)

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{NumKeys: 10, ValueBytes: 100}, true},
		{Spec{NumKeys: 0, ValueBytes: 100}, false},
		{Spec{NumKeys: 10, ValueBytes: 0}, false},
		{Spec{NumKeys: 10, ValueBytes: 1, ReadFraction: 1.5}, false},
		{Spec{NumKeys: 10, ValueBytes: 1, ReadFraction: -0.1}, false},
		{Spec{NumKeys: 10, ValueBytes: 1, ReadFraction: 0.5}, true},
	}
	for i, c := range cases {
		_, err := c.spec.Validate()
		if c.ok && err != nil {
			t.Fatalf("case %d: unexpected error %v", i, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestZipfThetaDefault(t *testing.T) {
	s, err := Spec{NumKeys: 10, ValueBytes: 1, Dist: Zipfian}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.ZipfTheta != 0.99 {
		t.Fatalf("theta default = %v", s.ZipfTheta)
	}
}

func TestUniformCoverage(t *testing.T) {
	g, err := NewGenerator(Spec{NumKeys: 100, ValueBytes: 10}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		op := g.Next()
		if op.Kind != OpWrite {
			t.Fatal("write-only workload generated a read")
		}
		counts[op.KeyID]++
	}
	for id, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("key %d hit %d times, want ~1000", id, c)
		}
	}
}

func TestReadFraction(t *testing.T) {
	g, err := NewGenerator(Spec{NumKeys: 100, ValueBytes: 10, ReadFraction: 0.5}, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next().Kind == OpRead {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("read fraction %.3f, want ~0.5", frac)
	}
}

func TestSequentialWraps(t *testing.T) {
	g, err := NewGenerator(Spec{NumKeys: 5, ValueBytes: 1, Dist: SequentialDist}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for want := uint64(0); want < 5; want++ {
			if got := g.Next().KeyID; got != want {
				t.Fatalf("sequential key %d, want %d", got, want)
			}
		}
	}
}

func TestZipfianSkewAndBounds(t *testing.T) {
	const n = 1000
	g, err := NewGenerator(Spec{NumKeys: n, ValueBytes: 1, Dist: Zipfian}, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		id := g.Next().KeyID
		if id >= n {
			t.Fatalf("key %d out of range", id)
		}
		counts[id]++
	}
	// Skew check: the most popular key should see far more than the
	// uniform share (draws/n = 200).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Fatalf("zipfian max key count %d, expected heavy skew (>1000)", max)
	}
	// Coverage check: scrambling should still reach many distinct keys.
	if len(counts) < n/3 {
		t.Fatalf("zipfian hit only %d distinct keys", len(counts))
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []Op {
		g, _ := NewGenerator(Spec{NumKeys: 50, ValueBytes: 1, ReadFraction: 0.3}, sim.NewRNG(7))
		ops := make([]Op, 1000)
		for i := range ops {
			ops[i] = g.Next()
		}
		return ops
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestDistString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" ||
		SequentialDist.String() != "sequential" {
		t.Fatal("Dist.String broken")
	}
	if Dist(99).String() == "" {
		t.Fatal("unknown dist should still render")
	}
}

func TestKeyEncoding(t *testing.T) {
	g, _ := NewGenerator(Spec{NumKeys: 10, ValueBytes: 1}, sim.NewRNG(1))
	if len(g.Key(3)) != 16 {
		t.Fatal("key should be 16 bytes")
	}
}

// TestClientSeedZeroIsBase pins the serving layer's determinism
// contract: client 0's derived seed is the base seed itself, so the
// first client of any (shards × clients) shape replays the exact key
// stream of a historical single-client run.
func TestClientSeedZeroIsBase(t *testing.T) {
	for _, base := range []uint64{0, 1, 42, 0xDEADBEEF} {
		if got := ClientSeed(base, 0); got != base {
			t.Fatalf("ClientSeed(%d, 0) = %d, want the base seed", base, got)
		}
	}
	// And other clients get distinct streams.
	seen := map[uint64]bool{}
	for c := 0; c < 64; c++ {
		s := ClientSeed(42, c)
		if seen[s] {
			t.Fatalf("client %d seed collides", c)
		}
		seen[s] = true
	}
}

// TestClientGeneratorsFirstMatchesSingle: generator 0 of a multi-client
// set produces the same ops as the historical single generator.
func TestClientGeneratorsFirstMatchesSingle(t *testing.T) {
	spec, err := Spec{NumKeys: 1000, ValueBytes: 64, ReadFraction: 0.5}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewGenerator(spec, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	gens, err := NewClientGenerators(spec, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		a, b := single.Next(), gens[0].Next()
		if a != b {
			t.Fatalf("op %d: single %+v, client 0 %+v", i, a, b)
		}
	}
	// Sibling clients do not mirror client 0.
	same := 0
	g, err := NewGenerator(spec, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if g.Next() == gens[3].Next() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("client 3 repeated %d/1000 ops of the base stream", same)
	}
}

func TestClientGeneratorsValidation(t *testing.T) {
	spec, err := Spec{NumKeys: 10, ValueBytes: 1}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClientGenerators(spec, 1, 0); err == nil {
		t.Fatal("expected error for 0 clients")
	}
}

// TestSkewDrawsNothingAtZero: Skew 0 consumes no extra randomness, so
// historical key streams stay bit-identical.
func TestSkewDrawsNothingAtZero(t *testing.T) {
	spec, err := Spec{NumKeys: 1 << 12, ValueBytes: 64, ReadFraction: 0.5}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewGenerator(spec, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	zeroSkew := spec
	zeroSkew.Skew = 0
	viaZero, err := NewGenerator(zeroSkew, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		if plain.Next() != viaZero.Next() {
			t.Fatalf("op %d diverged with Skew=0", i)
		}
	}
}

// TestSkewConcentratesKeys: with Skew set, the hot 1/16th of the
// keyspace absorbs at least the skew fraction of operations.
func TestSkewConcentratesKeys(t *testing.T) {
	spec, err := Spec{NumKeys: 1 << 12, ValueBytes: 64, Skew: 0.8}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(spec, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	hot := spec.NumKeys / 16
	in := 0
	const ops = 20000
	for i := 0; i < ops; i++ {
		if g.Next().KeyID < hot {
			in++
		}
	}
	// 0.8 skew plus the base distribution's own 1/16 mass.
	if frac := float64(in) / ops; frac < 0.78 || frac > 0.95 {
		t.Fatalf("hot-set fraction %v, want ~0.8 + 1/16", frac)
	}
	if _, err := (Spec{NumKeys: 10, ValueBytes: 1, Skew: 1.5}).Validate(); err == nil {
		t.Fatal("expected error for Skew > 1")
	}
}
