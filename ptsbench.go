// Package ptsbench is a simulation laboratory for benchmarking
// persistent tree structures (PTSes) on flash SSDs. It reproduces the
// methodology and every experiment of Didona, Ioannou, Stoica and
// Kourtis, "Toward a Better Understanding and Evaluation of Tree
// Structures on Flash SSDs" (VLDB 2020): seven benchmarking pitfalls
// demonstrated with an LSM-tree (RocksDB-like), a B+Tree
// (WiredTiger-like) and a Bε-tree (buffered copy-on-write B-tree)
// engine running on a simulated flash device with a page-mapped FTL,
// garbage collection and over-provisioning.
//
// The package is a facade over the internal implementation:
//
//   - Experiments: Spec/Run execute a full workload (load + measured
//     update phase) and return throughput, WA-A, WA-D and space
//     amplification series — the paper's §3.3 metrics.
//   - Figures: Figure/Figures regenerate the paper's evaluation figures
//     and tables.
//   - Stack: NewStack builds the simulated device + filesystem so the
//     engines can be driven directly (see OpenLSM / OpenBTree /
//     OpenBetree and the examples directory).
//
// All simulation is deterministic: the same Spec and seed produce
// bit-identical results.
package ptsbench

import (
	"fmt"

	"ptsbench/internal/betree"
	"ptsbench/internal/blockdev"
	"ptsbench/internal/btree"
	"ptsbench/internal/core"
	"ptsbench/internal/extfs"
	"ptsbench/internal/figures"
	"ptsbench/internal/flash"
	"ptsbench/internal/lsm"
	"ptsbench/internal/sim"
)

// Experiment types (see internal/core for full documentation).
type (
	// Spec describes one experiment run.
	Spec = core.Spec
	// Result carries the series and steady-state figures of a run.
	Result = core.Result
	// DeviceSpec describes the simulated SSD at paper scale.
	DeviceSpec = core.DeviceSpec
	// EngineKind selects the tree structure under test.
	EngineKind = core.EngineKind
	// InitialState is the drive state before the experiment.
	InitialState = core.InitialState
)

// Engine and initial-state constants.
const (
	LSM            = core.LSM
	BTree          = core.BTree
	Betree         = core.Betree
	Trimmed        = core.Trimmed
	Preconditioned = core.Preconditioned
)

// ParseEngine maps an engine name ("lsm", "btree", "betree") to its
// kind; the CLI's -engine flag uses it.
func ParseEngine(name string) (EngineKind, error) { return core.ParseEngine(name) }

// Run executes one experiment (load phase, measured update phase,
// instrumentation) and returns its result.
func Run(spec Spec) (*Result, error) { return core.Run(spec) }

// RunGrid executes independent experiment cells across goroutines
// (bounded by workers; < 1 means GOMAXPROCS) and returns results in
// cell order. Every cell seeds its own RNG from its Spec, so the
// results are bit-identical to running each Spec through Run
// sequentially — concurrency never costs determinism.
func RunGrid(specs []Spec, workers int) ([]*Result, error) {
	return core.RunGrid(specs, workers)
}

// DefaultDevice returns the paper's primary testbed device: a 400 GB
// enterprise flash SSD (SSD1).
func DefaultDevice() DeviceSpec { return core.DefaultDevice() }

// Device profiles for the paper's three SSD types (§4.7).
var (
	// ProfileSSD1 is the enterprise flash drive used in most figures.
	ProfileSSD1 = flash.ProfileSSD1
	// ProfileSSD2 is the consumer QLC drive with a large write cache.
	ProfileSSD2 = flash.ProfileSSD2
	// ProfileSSD3 is the Optane-like drive without garbage collection.
	ProfileSSD3 = flash.ProfileSSD3
)

// Figure types.
type (
	// FigureReport is the output of one figure reproduction.
	FigureReport = figures.Report
	// FigureOptions tune figure runs (scale, quick mode, seed).
	FigureOptions = figures.Options
)

// Figure regenerates one of the paper's figures ("fig2" .. "fig11").
func Figure(id string, opts FigureOptions) (*FigureReport, error) {
	f, ok := figures.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("ptsbench: unknown figure %q (have %v)", id, figures.IDs())
	}
	return f(opts)
}

// Figures lists the available figure IDs in paper order.
func Figures() []string { return figures.IDs() }

// Stack is a ready-to-use simulated storage stack: SSD, block device
// (with iostat counters and LBA histogram) and filesystem. Engines opened
// on the stack share its virtual-time device.
type Stack struct {
	SSD      *flash.Device
	BlockDev *blockdev.Device
	FS       *extfs.FS
}

// StackOptions configure NewStack.
type StackOptions struct {
	// CapacityBytes is the device capacity (default 1 GiB).
	CapacityBytes int64
	// Profile is the device model (default ProfileSSD1 scaled to a
	// laptop-friendly size).
	Profile *flash.Profile
	// ContentStore retains written bytes so reads return real data;
	// enable it for correctness-oriented use, leave off for pure
	// performance accounting.
	ContentStore bool
	// DiscardOnDelete mounts the filesystem with discard (default is
	// nodiscard, like the paper).
	DiscardOnDelete bool
}

// NewStack builds a simulated device and filesystem.
func NewStack(opts StackOptions) (*Stack, error) {
	capacity := opts.CapacityBytes
	if capacity <= 0 {
		capacity = 1 << 30
	}
	profile := flash.ProfileSSD1().Scaled(64)
	if opts.Profile != nil {
		profile = *opts.Profile
	}
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  capacity,
		PageSize:      4096,
		PagesPerBlock: 256,
		Profile:       profile,
	})
	if err != nil {
		return nil, err
	}
	bdev := blockdev.New(ssd)
	if opts.ContentStore {
		bdev.EnableContentStore()
	}
	fs, err := extfs.Mount(bdev, extfs.Options{Discard: opts.DiscardOnDelete})
	if err != nil {
		return nil, err
	}
	return &Stack{SSD: ssd, BlockDev: bdev, FS: fs}, nil
}

// Engine facade types.
type (
	// LSMTree is the RocksDB-like engine.
	LSMTree = lsm.DB
	// LSMConfig tunes the LSM engine.
	LSMConfig = lsm.Config
	// BPlusTree is the WiredTiger-like engine.
	BPlusTree = btree.Tree
	// BTreeConfig tunes the B+Tree engine.
	BTreeConfig = btree.Config
	// BeTree is the buffered copy-on-write Bε-tree engine.
	BeTree = betree.Tree
	// BetreeConfig tunes the Bε-tree engine (notably Epsilon, the
	// pivot/buffer split of interior nodes).
	BetreeConfig = betree.Config
	// VirtualTime is a duration on the simulation clock.
	VirtualTime = sim.Duration
)

// NewLSMConfig returns engine defaults sized for a dataset.
func NewLSMConfig(datasetBytes int64) LSMConfig { return lsm.NewConfig(datasetBytes) }

// NewBTreeConfig returns engine defaults sized for a dataset.
func NewBTreeConfig(datasetBytes int64) BTreeConfig { return btree.NewConfig(datasetBytes) }

// NewBetreeConfig returns Bε-tree defaults sized for a dataset.
func NewBetreeConfig(datasetBytes int64) BetreeConfig { return betree.NewConfig(datasetBytes) }

// OpenLSM opens an LSM engine on the stack's filesystem. seed drives the
// engine's internal randomness (skiplist heights).
func OpenLSM(s *Stack, cfg LSMConfig, seed uint64) (*LSMTree, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return lsm.Open(s.FS, cfg, sim.NewRNG(seed))
}

// OpenBTree opens a B+Tree engine on the stack's filesystem.
func OpenBTree(s *Stack, cfg BTreeConfig) (*BPlusTree, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return btree.Open(s.FS, cfg)
}

// OpenBetree opens a Bε-tree engine on the stack's filesystem.
func OpenBetree(s *Stack, cfg BetreeConfig) (*BeTree, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return betree.Open(s.FS, cfg)
}

// RecoverLSM reopens an LSM database from the stack's on-device state
// (manifest + SSTables + WAL replay). The stack must have its content
// store enabled. It returns the recovered database and the virtual time
// consumed by recovery I/O.
func RecoverLSM(s *Stack, cfg LSMConfig, seed uint64, now VirtualTime) (*LSMTree, VirtualTime, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return lsm.Recover(s.FS, cfg, sim.NewRNG(seed), now)
}

// RecoverBTree reopens a B+Tree from the stack's on-device state
// (checkpoint metadata + page tree + journal replay). The stack must
// have its content store enabled.
func RecoverBTree(s *Stack, cfg BTreeConfig, now VirtualTime) (*BPlusTree, VirtualTime, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return btree.Recover(s.FS, cfg, now)
}

// RecoverBetree reopens a Bε-tree from the stack's on-device state
// (checkpoint metadata + node tree with persisted buffers + journal
// replay). The stack must have its content store enabled.
func RecoverBetree(s *Stack, cfg BetreeConfig, now VirtualTime) (*BeTree, VirtualTime, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return betree.Recover(s.FS, cfg, now)
}

// EncodeKey produces the canonical 16-byte key for a numeric id (the
// paper's key format).
func EncodeKey(id uint64) []byte { return encodeKey(id) }

// encodeKey avoids importing internal/kv into this file's doc surface.
func encodeKey(id uint64) []byte {
	k := make([]byte, 16)
	for i := 0; i < 8; i++ {
		k[15-i] = byte(id >> (8 * i))
	}
	return k
}
