// Package ptsbench is a simulation laboratory for benchmarking
// persistent tree structures (PTSes) on flash SSDs. It reproduces the
// methodology and every experiment of Didona, Ioannou, Stoica and
// Kourtis, "Toward a Better Understanding and Evaluation of Tree
// Structures on Flash SSDs" (VLDB 2020): seven benchmarking pitfalls
// demonstrated with an LSM-tree (RocksDB-like), a B+Tree
// (WiredTiger-like) and a Bε-tree (buffered copy-on-write B-tree)
// engine running on a simulated flash device with a page-mapped FTL,
// garbage collection and over-provisioning.
//
// The package is a facade over the internal implementation:
//
//   - Experiments: Spec/Run execute a full workload (load + measured
//     update phase) and return throughput, WA-A, WA-D and space
//     amplification series — the paper's §3.3 metrics. Spec is pure
//     data (the engine is a registry name, its knobs are string-valued
//     tunables), so experiments serialize to JSON: ParseExperiment
//     loads a declarative spec file and expands its sweep lists into a
//     grid of cells (`ptsbench exp`).
//   - Engines: the tree structures are pluggable drivers behind a
//     registry (internal/engine). Engines lists them with their
//     tunables; OpenEngine/RecoverEngine resolve one by name. The
//     typed wrappers (OpenLSM / OpenBTree / OpenBetree and friends)
//     remain as thin aliases for callers that want concrete types.
//   - Figures: Figure/Figures regenerate the paper's evaluation figures
//     and tables.
//   - Stack: NewStack builds the simulated device + filesystem so the
//     engines can be driven directly (see the examples directory).
//
// All simulation is deterministic: the same Spec and seed produce
// bit-identical results.
package ptsbench

import (
	"fmt"
	"io"

	"ptsbench/internal/betree"
	"ptsbench/internal/blockdev"
	"ptsbench/internal/btree"
	"ptsbench/internal/core"
	"ptsbench/internal/engine"
	"ptsbench/internal/extfs"
	"ptsbench/internal/figures"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/lsm"
	"ptsbench/internal/sim"
)

// Experiment types (see internal/core for full documentation).
type (
	// Spec describes one experiment run. It is fully declarative and
	// round-trips through JSON.
	Spec = core.Spec
	// Result carries the series and steady-state figures of a run.
	Result = core.Result
	// DeviceSpec describes the simulated SSD at paper scale.
	DeviceSpec = core.DeviceSpec
	// EngineKind selects the tree structure under test; it is the
	// engine's driver-registry name.
	EngineKind = core.EngineKind
	// InitialState is the drive state before the experiment.
	InitialState = core.InitialState
	// Experiment is a declarative experiment grid: a Spec template
	// plus sweep lists over engines, read fractions, queue depths and
	// scales. ParseExperiment loads one from JSON.
	Experiment = core.Experiment
)

// Engine and initial-state constants.
const (
	LSM            = core.LSM
	BTree          = core.BTree
	Betree         = core.Betree
	Trimmed        = core.Trimmed
	Preconditioned = core.Preconditioned
)

// ParseEngine maps an engine name ("lsm", "btree", "betree", ...) to
// its kind, validating it against the driver registry; the CLI's
// -engine flag uses it.
func ParseEngine(name string) (EngineKind, error) { return core.ParseEngine(name) }

// ParseExperiment parses a declarative experiment spec file (see the
// README's "Running your own experiments" and examples/specs). The
// returned Experiment's Specs method expands the sweep cross product
// into runnable cells for Run or RunGrid.
func ParseExperiment(data []byte) (*Experiment, error) { return core.ParseExperiment(data) }

// ExpReport renders an experiment grid's results as a figure-style
// report (summary table plus one throughput curve per cell) that can
// be printed with Render and exported with WriteCSV.
func ExpReport(name string, specs []Spec, results []*Result) *FigureReport {
	return figures.ExpReport(name, specs, results)
}

// WriteResultsJSON writes experiment results as one JSON array; the
// embedded specs stay declarative, so a result file documents exactly
// how to reproduce itself.
func WriteResultsJSON(w io.Writer, results []*Result) error {
	return core.WriteResultsJSON(w, results)
}

// ReadResultsJSON parses a WriteResultsJSON file.
func ReadResultsJSON(r io.Reader) ([]*Result, error) { return core.ReadResultsJSON(r) }

// Run executes one experiment (load phase, measured update phase,
// instrumentation) and returns its result.
func Run(spec Spec) (*Result, error) { return core.Run(spec) }

// RunGrid executes independent experiment cells across goroutines
// (bounded by workers; < 1 means GOMAXPROCS) and returns results in
// cell order. Every cell seeds its own RNG from its Spec, so the
// results are bit-identical to running each Spec through Run
// sequentially — concurrency never costs determinism.
func RunGrid(specs []Spec, workers int) ([]*Result, error) {
	return core.RunGrid(specs, workers)
}

// DefaultDevice returns the paper's primary testbed device: a 400 GB
// enterprise flash SSD (SSD1).
func DefaultDevice() DeviceSpec { return core.DefaultDevice() }

// Device profiles for the paper's three SSD types (§4.7).
var (
	// ProfileSSD1 is the enterprise flash drive used in most figures.
	ProfileSSD1 = flash.ProfileSSD1
	// ProfileSSD2 is the consumer QLC drive with a large write cache.
	ProfileSSD2 = flash.ProfileSSD2
	// ProfileSSD3 is the Optane-like drive without garbage collection.
	ProfileSSD3 = flash.ProfileSSD3
)

// Figure types.
type (
	// FigureReport is the output of one figure reproduction.
	FigureReport = figures.Report
	// FigureOptions tune figure runs (scale, quick mode, seed).
	FigureOptions = figures.Options
)

// Figure regenerates one of the paper's figures ("fig2" .. "fig11").
func Figure(id string, opts FigureOptions) (*FigureReport, error) {
	f, ok := figures.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("ptsbench: unknown figure %q (have %v)", id, figures.IDs())
	}
	return f(opts)
}

// Figures lists the available figure IDs in paper order.
func Figures() []string { return figures.IDs() }

// Stack is a ready-to-use simulated storage stack: SSD, block device
// (with iostat counters and LBA histogram) and filesystem. Engines opened
// on the stack share its virtual-time device.
type Stack struct {
	SSD      *flash.Device
	BlockDev *blockdev.Device
	FS       *extfs.FS
}

// StackOptions configure NewStack.
type StackOptions struct {
	// CapacityBytes is the device capacity (default 1 GiB).
	CapacityBytes int64
	// Profile is the device model (default ProfileSSD1 scaled to a
	// laptop-friendly size).
	Profile *flash.Profile
	// ContentStore retains written bytes so reads return real data;
	// enable it for correctness-oriented use, leave off for pure
	// performance accounting.
	ContentStore bool
	// DiscardOnDelete mounts the filesystem with discard (default is
	// nodiscard, like the paper).
	DiscardOnDelete bool
}

// NewStack builds a simulated device and filesystem.
func NewStack(opts StackOptions) (*Stack, error) {
	capacity := opts.CapacityBytes
	if capacity <= 0 {
		capacity = 1 << 30
	}
	profile := flash.ProfileSSD1().Scaled(64)
	if opts.Profile != nil {
		profile = *opts.Profile
	}
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  capacity,
		PageSize:      4096,
		PagesPerBlock: 256,
		Profile:       profile,
	})
	if err != nil {
		return nil, err
	}
	bdev := blockdev.New(ssd)
	if opts.ContentStore {
		bdev.EnableContentStore()
	}
	fs, err := extfs.Mount(bdev, extfs.Options{Discard: opts.DiscardOnDelete})
	if err != nil {
		return nil, err
	}
	return &Stack{SSD: ssd, BlockDev: bdev, FS: fs}, nil
}

// Generic engine access. The registry makes every engine reachable by
// name with one code path; the typed wrappers below remain for callers
// that want the concrete types.
type (
	// Engine is the generic engine handle: the kv operations plus the
	// simulation lifecycle (Quiesce, Close). OpenEngine and
	// RecoverEngine return it.
	Engine = engine.Engine
	// EngineTunable documents one declarative engine knob.
	EngineTunable = engine.Tunable
)

// EngineInfo describes one registered engine driver.
type EngineInfo struct {
	// Name is the registry name ("lsm", "btree", "betree", ...).
	Name string
	// Tunables lists the declarative knobs the engine accepts in
	// Spec.Tunables, spec files and OpenEngine.
	Tunables []EngineTunable
}

// Engines lists the registered engine drivers with their tunables, in
// name order. `ptsbench engines` prints this.
func Engines() []EngineInfo {
	var infos []EngineInfo
	for _, name := range engine.Names() {
		drv, err := engine.Lookup(name)
		if err != nil {
			continue // racing deregistration cannot happen; defensive
		}
		infos = append(infos, EngineInfo{
			Name:     name,
			Tunables: drv.Configure(engine.Sizing{}).Tunables(),
		})
	}
	return infos
}

// engineConfig resolves an engine by name and sizes + tunes its config.
func engineConfig(name string, datasetBytes int64, tunables map[string]string) (engine.Config, error) {
	drv, err := engine.Lookup(name)
	if err != nil {
		return nil, err
	}
	cfg := drv.Configure(engine.Sizing{DatasetBytes: datasetBytes})
	if err := cfg.ApplyTunables(tunables); err != nil {
		return nil, err
	}
	return cfg, nil
}

// OpenEngine opens any registered engine by name on the stack's
// filesystem, with defaults sized for datasetBytes and declarative
// tunable overrides (nil for none). seed drives engine-internal
// randomness where the engine uses any.
func OpenEngine(s *Stack, name string, datasetBytes int64, tunables map[string]string, seed uint64) (Engine, error) {
	cfg, err := engineConfig(name, datasetBytes, tunables)
	if err != nil {
		return nil, err
	}
	return cfg.Open(engine.Env{
		FS:      s.FS,
		RNG:     sim.NewRNG(seed),
		Content: s.BlockDev.ContentEnabled(),
	})
}

// RecoverEngine reopens any registered engine by name from the stack's
// on-device state (checkpoint metadata, manifests, journal/WAL replay).
// The stack must have its content store enabled. It returns the
// recovered engine and the virtual time consumed by recovery I/O.
func RecoverEngine(s *Stack, name string, datasetBytes int64, tunables map[string]string, seed uint64, now VirtualTime) (Engine, VirtualTime, error) {
	cfg, err := engineConfig(name, datasetBytes, tunables)
	if err != nil {
		return nil, 0, err
	}
	return cfg.Recover(engine.Env{
		FS:      s.FS,
		RNG:     sim.NewRNG(seed),
		Content: s.BlockDev.ContentEnabled(),
	}, now)
}

// Engine facade types.
type (
	// LSMTree is the RocksDB-like engine.
	LSMTree = lsm.DB
	// LSMConfig tunes the LSM engine.
	LSMConfig = lsm.Config
	// BPlusTree is the WiredTiger-like engine.
	BPlusTree = btree.Tree
	// BTreeConfig tunes the B+Tree engine.
	BTreeConfig = btree.Config
	// BeTree is the buffered copy-on-write Bε-tree engine.
	BeTree = betree.Tree
	// BetreeConfig tunes the Bε-tree engine (notably Epsilon, the
	// pivot/buffer split of interior nodes).
	BetreeConfig = betree.Config
	// VirtualTime is a duration on the simulation clock.
	VirtualTime = sim.Duration
)

// NewLSMConfig returns engine defaults sized for a dataset.
func NewLSMConfig(datasetBytes int64) LSMConfig { return lsm.NewConfig(datasetBytes) }

// NewBTreeConfig returns engine defaults sized for a dataset.
func NewBTreeConfig(datasetBytes int64) BTreeConfig { return btree.NewConfig(datasetBytes) }

// NewBetreeConfig returns Bε-tree defaults sized for a dataset.
func NewBetreeConfig(datasetBytes int64) BetreeConfig { return betree.NewConfig(datasetBytes) }

// OpenLSM opens an LSM engine on the stack's filesystem. seed drives the
// engine's internal randomness (skiplist heights).
func OpenLSM(s *Stack, cfg LSMConfig, seed uint64) (*LSMTree, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return lsm.Open(s.FS, cfg, sim.NewRNG(seed))
}

// OpenBTree opens a B+Tree engine on the stack's filesystem.
func OpenBTree(s *Stack, cfg BTreeConfig) (*BPlusTree, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return btree.Open(s.FS, cfg)
}

// OpenBetree opens a Bε-tree engine on the stack's filesystem.
func OpenBetree(s *Stack, cfg BetreeConfig) (*BeTree, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return betree.Open(s.FS, cfg)
}

// RecoverLSM reopens an LSM database from the stack's on-device state
// (manifest + SSTables + WAL replay). The stack must have its content
// store enabled. It returns the recovered database and the virtual time
// consumed by recovery I/O.
func RecoverLSM(s *Stack, cfg LSMConfig, seed uint64, now VirtualTime) (*LSMTree, VirtualTime, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return lsm.Recover(s.FS, cfg, sim.NewRNG(seed), now)
}

// RecoverBTree reopens a B+Tree from the stack's on-device state
// (checkpoint metadata + page tree + journal replay). The stack must
// have its content store enabled.
func RecoverBTree(s *Stack, cfg BTreeConfig, now VirtualTime) (*BPlusTree, VirtualTime, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return btree.Recover(s.FS, cfg, now)
}

// RecoverBetree reopens a Bε-tree from the stack's on-device state
// (checkpoint metadata + node tree with persisted buffers + journal
// replay). The stack must have its content store enabled.
func RecoverBetree(s *Stack, cfg BetreeConfig, now VirtualTime) (*BeTree, VirtualTime, error) {
	cfg.Content = s.BlockDev.ContentEnabled()
	return betree.Recover(s.FS, cfg, now)
}

// EncodeKey produces the canonical 16-byte key for a numeric id (the
// paper's key format). It delegates to internal/kv — the single
// definition the engines and the workload generator share — so the
// facade can never drift from the keys the harness actually writes.
func EncodeKey(id uint64) []byte { return kv.EncodeKey(id) }
