package ptsbench_test

// Tests for the public facade: everything a downstream user touches.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ptsbench"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
	"ptsbench/internal/workload"
)

func TestStackAndLSMRoundTrip(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ptsbench.NewLSMConfig(32 << 20)
	cfg.WALFlushBytes = 0 // sync the WAL on every put for this test
	db, err := ptsbench.OpenLSM(stack, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = db.Put(now, ptsbench.EncodeKey(1), []byte("hello"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := db.Get(now, ptsbench.EncodeKey(1))
	if err != nil || !found || string(v) != "hello" {
		t.Fatalf("Get: %q %v %v", v, found, err)
	}
	if stack.BlockDev.Counters().BytesWritten == 0 {
		t.Fatal("WAL write should reach the device")
	}
}

func TestStackAndBTreeRoundTrip(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ptsbench.OpenBTree(stack, ptsbench.NewBTreeConfig(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = tr.Put(now, ptsbench.EncodeKey(7), []byte("world"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := tr.Get(now, ptsbench.EncodeKey(7))
	if err != nil || !found || string(v) != "world" {
		t.Fatalf("Get: %q %v %v", v, found, err)
	}
}

func TestStackAndBetreeRoundTrip(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ptsbench.OpenBetree(stack, ptsbench.NewBetreeConfig(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = tr.Put(now, ptsbench.EncodeKey(7), []byte("buffered"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := tr.Get(now, ptsbench.EncodeKey(7))
	if err != nil || !found || string(v) != "buffered" {
		t.Fatalf("Get: %q %v %v", v, found, err)
	}
}

func TestBetreeRecoveryThroughFacade(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ptsbench.NewBetreeConfig(16 << 20)
	tr, err := ptsbench.OpenBetree(stack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = tr.Put(now, ptsbench.EncodeKey(3), []byte("durable"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := ptsbench.RecoverBetree(stack, cfg, now)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := re.Get(rnow, ptsbench.EncodeKey(3))
	if err != nil || !found || string(v) != "durable" {
		t.Fatalf("recovered Get: %q %v %v", v, found, err)
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]ptsbench.EngineKind{
		"lsm": ptsbench.LSM, "btree": ptsbench.BTree, "betree": ptsbench.Betree,
	} {
		got, err := ptsbench.ParseEngine(name)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ptsbench.ParseEngine("bogus"); err == nil {
		t.Fatal("unknown engine should error")
	}
}

func TestEncodeKeyMatchesOrdering(t *testing.T) {
	a, b := ptsbench.EncodeKey(10), ptsbench.EncodeKey(11)
	if len(a) != 16 {
		t.Fatalf("key length %d", len(a))
	}
	if bytes.Compare(a, b) >= 0 {
		t.Fatal("numeric order not preserved")
	}
}

// TestEncodeKeyMatchesHarness pins the facade's key codec byte-for-byte
// to the one the harness actually writes: internal/kv's canonical
// encoding, as surfaced through workload.Generator.Key. The facade used
// to carry its own hand-rolled copy; this test makes any future drift a
// failure.
func TestEncodeKeyMatchesHarness(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Spec{NumKeys: 1 << 20, ValueBytes: 100}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{0, 1, 255, 256, 1<<16 - 1, 1 << 16, 1<<32 + 12345, ^uint64(0)}
	for _, id := range ids {
		facade := ptsbench.EncodeKey(id)
		if !bytes.Equal(facade, kv.EncodeKey(id)) {
			t.Fatalf("id %d: facade key % x != kv.EncodeKey % x", id, facade, kv.EncodeKey(id))
		}
		if !bytes.Equal(facade, gen.Key(id)) {
			t.Fatalf("id %d: facade key % x != workload generator key % x", id, facade, gen.Key(id))
		}
	}
}

// TestEnginesRegistry: the facade lists every built-in driver with its
// tunables.
func TestEnginesRegistry(t *testing.T) {
	infos := ptsbench.Engines()
	byName := map[string][]ptsbench.EngineTunable{}
	for _, info := range infos {
		byName[info.Name] = info.Tunables
	}
	for _, name := range []string{"lsm", "btree", "betree"} {
		tunables, ok := byName[name]
		if !ok {
			t.Fatalf("engine %q missing from Engines()", name)
		}
		if len(tunables) == 0 {
			t.Fatalf("engine %q documents no tunables", name)
		}
	}
}

// TestOpenEngineGeneric drives every registered engine through the
// generic registry entry point: open by name, write, read back.
func TestOpenEngineGeneric(t *testing.T) {
	for _, info := range ptsbench.Engines() {
		stack, err := ptsbench.NewStack(ptsbench.StackOptions{
			CapacityBytes: 256 << 20,
			ContentStore:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := ptsbench.OpenEngine(stack, info.Name, 32<<20, nil, 1)
		if err != nil {
			t.Fatalf("%s: OpenEngine: %v", info.Name, err)
		}
		var now ptsbench.VirtualTime
		now, err = eng.Put(now, ptsbench.EncodeKey(42), []byte("generic"), 0)
		if err != nil {
			t.Fatalf("%s: Put: %v", info.Name, err)
		}
		_, v, found, err := eng.Get(now, ptsbench.EncodeKey(42))
		if err != nil || !found || string(v) != "generic" {
			t.Fatalf("%s: Get: %q %v %v", info.Name, v, found, err)
		}
	}
}

// TestRecoverEngineGeneric closes each engine and reopens it by name
// through the registry's recovery path.
func TestRecoverEngineGeneric(t *testing.T) {
	for _, info := range ptsbench.Engines() {
		stack, err := ptsbench.NewStack(ptsbench.StackOptions{
			CapacityBytes: 256 << 20,
			ContentStore:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := ptsbench.OpenEngine(stack, info.Name, 16<<20, nil, 1)
		if err != nil {
			t.Fatalf("%s: OpenEngine: %v", info.Name, err)
		}
		var now ptsbench.VirtualTime
		now, err = eng.Put(now, ptsbench.EncodeKey(3), []byte("durable"), 0)
		if err != nil {
			t.Fatalf("%s: Put: %v", info.Name, err)
		}
		if now, err = eng.Close(now); err != nil {
			t.Fatalf("%s: Close: %v", info.Name, err)
		}
		re, rnow, err := ptsbench.RecoverEngine(stack, info.Name, 16<<20, nil, 2, now)
		if err != nil {
			t.Fatalf("%s: RecoverEngine: %v", info.Name, err)
		}
		_, v, found, err := re.Get(rnow, ptsbench.EncodeKey(3))
		if err != nil || !found || string(v) != "durable" {
			t.Fatalf("%s: recovered Get: %q %v %v", info.Name, v, found, err)
		}
	}
}

// TestOpenEngineTunables: declarative knobs reach the engine config,
// and bad ones fail with the engine's name.
func TestOpenEngineTunables(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ptsbench.OpenEngine(stack, "betree", 32<<20, map[string]string{"epsilon": "0.7"}, 1)
	if err != nil {
		t.Fatalf("OpenEngine with tunables: %v", err)
	}
	if _, err := eng.Put(0, ptsbench.EncodeKey(1), []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	_, err = ptsbench.OpenEngine(stack, "betree", 32<<20, map[string]string{"no_such": "1"}, 1)
	if err == nil || !strings.Contains(err.Error(), "betree") {
		t.Fatalf("unknown tunable should error naming the engine: %v", err)
	}
	if _, err := ptsbench.OpenEngine(stack, "fractal", 32<<20, nil, 1); err == nil {
		t.Fatal("unknown engine should error")
	}
}

func TestRunFacade(t *testing.T) {
	res, err := ptsbench.Run(ptsbench.Spec{
		Engine:   ptsbench.LSM,
		Scale:    2048,
		Duration: 15 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steady.ThroughputKOps <= 0 {
		t.Fatal("no throughput")
	}
}

func TestFigureFacade(t *testing.T) {
	// The paper's fig2..fig11 plus the qdsweep, betradeoff,
	// shardsweep and replsweep extensions.
	if len(ptsbench.Figures()) != 14 {
		t.Fatalf("expected 14 figures, got %d", len(ptsbench.Figures()))
	}
	rep, err := ptsbench.Figure("fig4", ptsbench.FigureOptions{Quick: true, Scale: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig4" || len(rep.Series) == 0 {
		t.Fatalf("malformed report: %+v", rep)
	}
	if _, err := ptsbench.Figure("fig99", ptsbench.FigureOptions{}); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestDeviceProfiles(t *testing.T) {
	for _, p := range []func() (name string){
		func() string { return ptsbench.ProfileSSD1().Name },
		func() string { return ptsbench.ProfileSSD2().Name },
		func() string { return ptsbench.ProfileSSD3().Name },
	} {
		if p() == "" {
			t.Fatal("profile has no name")
		}
	}
	if ptsbench.DefaultDevice().CapacityBytes != 400<<30 {
		t.Fatal("default device should be the paper's 400 GB drive")
	}
}

func TestStackDefaults(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stack.SSD.LogicalBytes() != 1<<30 {
		t.Fatalf("default capacity %d", stack.SSD.LogicalBytes())
	}
	if stack.BlockDev.ContentEnabled() {
		t.Fatal("content store should default off")
	}
}

func TestRecoveryThroughFacade(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ptsbench.NewLSMConfig(16 << 20)
	cfg.WALFlushBytes = 0
	db, err := ptsbench.OpenLSM(stack, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = db.Put(now, ptsbench.EncodeKey(9), []byte("persist"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := ptsbench.RecoverLSM(stack, cfg, 2, now)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := re.Get(rnow, ptsbench.EncodeKey(9))
	if err != nil || !found || string(v) != "persist" {
		t.Fatalf("recovered Get: %q %v %v", v, found, err)
	}
}

func TestBTreeRecoveryThroughFacade(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ptsbench.NewBTreeConfig(16 << 20)
	tr, err := ptsbench.OpenBTree(stack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = tr.Put(now, ptsbench.EncodeKey(3), []byte("durable"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := ptsbench.RecoverBTree(stack, cfg, now)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := re.Get(rnow, ptsbench.EncodeKey(3))
	if err != nil || !found || string(v) != "durable" {
		t.Fatalf("recovered Get: %q %v %v", v, found, err)
	}
}
