package ptsbench_test

// Tests for the public facade: everything a downstream user touches.

import (
	"bytes"
	"testing"
	"time"

	"ptsbench"
)

func TestStackAndLSMRoundTrip(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ptsbench.NewLSMConfig(32 << 20)
	cfg.WALFlushBytes = 0 // sync the WAL on every put for this test
	db, err := ptsbench.OpenLSM(stack, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = db.Put(now, ptsbench.EncodeKey(1), []byte("hello"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := db.Get(now, ptsbench.EncodeKey(1))
	if err != nil || !found || string(v) != "hello" {
		t.Fatalf("Get: %q %v %v", v, found, err)
	}
	if stack.BlockDev.Counters().BytesWritten == 0 {
		t.Fatal("WAL write should reach the device")
	}
}

func TestStackAndBTreeRoundTrip(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ptsbench.OpenBTree(stack, ptsbench.NewBTreeConfig(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = tr.Put(now, ptsbench.EncodeKey(7), []byte("world"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := tr.Get(now, ptsbench.EncodeKey(7))
	if err != nil || !found || string(v) != "world" {
		t.Fatalf("Get: %q %v %v", v, found, err)
	}
}

func TestStackAndBetreeRoundTrip(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ptsbench.OpenBetree(stack, ptsbench.NewBetreeConfig(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = tr.Put(now, ptsbench.EncodeKey(7), []byte("buffered"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := tr.Get(now, ptsbench.EncodeKey(7))
	if err != nil || !found || string(v) != "buffered" {
		t.Fatalf("Get: %q %v %v", v, found, err)
	}
}

func TestBetreeRecoveryThroughFacade(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ptsbench.NewBetreeConfig(16 << 20)
	tr, err := ptsbench.OpenBetree(stack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = tr.Put(now, ptsbench.EncodeKey(3), []byte("durable"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := ptsbench.RecoverBetree(stack, cfg, now)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := re.Get(rnow, ptsbench.EncodeKey(3))
	if err != nil || !found || string(v) != "durable" {
		t.Fatalf("recovered Get: %q %v %v", v, found, err)
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]ptsbench.EngineKind{
		"lsm": ptsbench.LSM, "btree": ptsbench.BTree, "betree": ptsbench.Betree,
	} {
		got, err := ptsbench.ParseEngine(name)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ptsbench.ParseEngine("bogus"); err == nil {
		t.Fatal("unknown engine should error")
	}
}

func TestEncodeKeyMatchesOrdering(t *testing.T) {
	a, b := ptsbench.EncodeKey(10), ptsbench.EncodeKey(11)
	if len(a) != 16 {
		t.Fatalf("key length %d", len(a))
	}
	if bytes.Compare(a, b) >= 0 {
		t.Fatal("numeric order not preserved")
	}
}

func TestRunFacade(t *testing.T) {
	res, err := ptsbench.Run(ptsbench.Spec{
		Engine:   ptsbench.LSM,
		Scale:    2048,
		Duration: 15 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steady.ThroughputKOps <= 0 {
		t.Fatal("no throughput")
	}
}

func TestFigureFacade(t *testing.T) {
	// The paper's fig2..fig11 plus the qdsweep and betradeoff extensions.
	if len(ptsbench.Figures()) != 12 {
		t.Fatalf("expected 12 figures, got %d", len(ptsbench.Figures()))
	}
	rep, err := ptsbench.Figure("fig4", ptsbench.FigureOptions{Quick: true, Scale: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig4" || len(rep.Series) == 0 {
		t.Fatalf("malformed report: %+v", rep)
	}
	if _, err := ptsbench.Figure("fig99", ptsbench.FigureOptions{}); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestDeviceProfiles(t *testing.T) {
	for _, p := range []func() (name string){
		func() string { return ptsbench.ProfileSSD1().Name },
		func() string { return ptsbench.ProfileSSD2().Name },
		func() string { return ptsbench.ProfileSSD3().Name },
	} {
		if p() == "" {
			t.Fatal("profile has no name")
		}
	}
	if ptsbench.DefaultDevice().CapacityBytes != 400<<30 {
		t.Fatal("default device should be the paper's 400 GB drive")
	}
}

func TestStackDefaults(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stack.SSD.LogicalBytes() != 1<<30 {
		t.Fatalf("default capacity %d", stack.SSD.LogicalBytes())
	}
	if stack.BlockDev.ContentEnabled() {
		t.Fatal("content store should default off")
	}
}

func TestRecoveryThroughFacade(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ptsbench.NewLSMConfig(16 << 20)
	cfg.WALFlushBytes = 0
	db, err := ptsbench.OpenLSM(stack, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = db.Put(now, ptsbench.EncodeKey(9), []byte("persist"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := ptsbench.RecoverLSM(stack, cfg, 2, now)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := re.Get(rnow, ptsbench.EncodeKey(9))
	if err != nil || !found || string(v) != "persist" {
		t.Fatalf("recovered Get: %q %v %v", v, found, err)
	}
}

func TestBTreeRecoveryThroughFacade(t *testing.T) {
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 256 << 20,
		ContentStore:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ptsbench.NewBTreeConfig(16 << 20)
	tr, err := ptsbench.OpenBTree(stack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now ptsbench.VirtualTime
	now, err = tr.Put(now, ptsbench.EncodeKey(3), []byte("durable"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := ptsbench.RecoverBTree(stack, cfg, now)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := re.Get(rnow, ptsbench.EncodeKey(3))
	if err != nil || !found || string(v) != "durable" {
		t.Fatalf("recovered Get: %q %v %v", v, found, err)
	}
}
